#include "runner/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <thread>

#include "util/stats.hpp"

namespace flowsched {
namespace {

// Same finalizer as util/rng.cpp uses to expand seeds; duplicated here so
// the seed-derivation contract cannot drift with Rng internals.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string hex_id(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ReplicateError::ReplicateError(std::uint64_t experiment, std::uint64_t cell,
                               std::uint64_t rep, const std::string& detail)
    : std::runtime_error("replicate failed: experiment=" + hex_id(experiment) +
                         " cell=" + hex_id(cell) + " rep=" +
                         std::to_string(rep) + ": " + detail),
      experiment_(experiment),
      cell_(cell),
      rep_(rep) {}

std::uint64_t experiment_id(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

std::uint64_t cell_id(std::initializer_list<std::uint64_t> coords) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (std::uint64_t c : coords) {
    std::uint64_t x = h ^ c;
    h = splitmix64(x);
  }
  return h;
}

std::uint64_t replicate_seed(std::uint64_t experiment, std::uint64_t cell,
                             std::uint64_t rep) {
  std::uint64_t x = experiment;
  std::uint64_t h = splitmix64(x);
  x = h ^ cell;
  h = splitmix64(x);
  x = h ^ rep;
  return splitmix64(x);
}

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ExperimentRunner::ExperimentRunner(int threads)
    : threads_(resolve_threads(threads)) {
  if (threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(threads_);
    // Outer claim in the process-wide ledger: nested shard engines
    // (sched/sharded) auto-size their worker teams from what is left.
    budget_reserved_ = threads_;
    CoreBudget::instance().reserve(budget_reserved_);
  }
}

ExperimentRunner::~ExperimentRunner() {
  if (budget_reserved_ > 0) CoreBudget::instance().release(budget_reserved_);
}

std::vector<double> ExperimentRunner::replicates(
    std::uint64_t experiment, std::uint64_t cell, int reps,
    const std::function<double(std::uint64_t, int)>& fn) {
  set_watch_label("experiment=" + hex_id(experiment) + " cell=" +
                  hex_id(cell));
  auto result = map<double>(reps, [&](int rep) {
    const std::uint64_t seed =
        replicate_seed(experiment, cell, static_cast<std::uint64_t>(rep));
    try {
      return fn(seed, rep);
    } catch (const ReplicateError&) {
      throw;  // already tagged (nested replicates())
    } catch (const std::exception& e) {
      throw ReplicateError(experiment, cell, static_cast<std::uint64_t>(rep),
                           e.what());
    } catch (...) {
      throw ReplicateError(experiment, cell, static_cast<std::uint64_t>(rep),
                           "unknown exception");
    }
  });
  set_watch_label("");
  return result;
}

// --- Watchdog --------------------------------------------------------------

struct ExperimentRunner::WatchdogState {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<double> started;  // steady seconds; 0 = not running
  std::vector<bool> reported;
  int open = 0;      // jobs begun and not yet ended
  int finished = 0;  // jobs ended
  int count = 0;
  bool done = false;
};

ExperimentRunner::WatchSession ExperimentRunner::watch_start(int count) {
  WatchSession session;
  if (watchdog_seconds_ <= 0) return session;
  session.state = std::make_shared<WatchdogState>();
  session.state->started.assign(static_cast<std::size_t>(count), 0.0);
  session.state->reported.assign(static_cast<std::size_t>(count), false);
  session.state->count = count;
  const double limit = watchdog_seconds_;
  std::shared_ptr<WatchdogState> state = session.state;
  session.monitor = std::thread([this, state, limit] {
    std::unique_lock<std::mutex> lock(state->mu);
    // Poll at a fraction of the limit so an overrun is noticed promptly
    // without busy-waiting.
    const auto tick = std::chrono::duration<double>(
        std::max(limit / 4.0, 1e-3));
    while (!state->done) {
      state->cv.wait_for(lock, tick);
      const double now = now_seconds();
      for (std::size_t i = 0; i < state->started.size(); ++i) {
        if (state->started[i] > 0 && !state->reported[i] &&
            now - state->started[i] > limit) {
          state->reported[i] = true;
          const double elapsed = now - state->started[i];
          lock.unlock();
          record_hung(static_cast<int>(i), elapsed);
          lock.lock();
        }
      }
    }
  });
  return session;
}

void ExperimentRunner::watch_job_begin(const std::shared_ptr<WatchdogState>& s,
                                       int index) {
  if (!s) return;
  std::lock_guard<std::mutex> lock(s->mu);
  s->started[static_cast<std::size_t>(index)] = now_seconds();
  ++s->open;
}

void ExperimentRunner::watch_job_end(const std::shared_ptr<WatchdogState>& s,
                                     int index) {
  if (!s) return;
  std::lock_guard<std::mutex> lock(s->mu);
  s->started[static_cast<std::size_t>(index)] = 0.0;
  --s->open;
  ++s->finished;
}

void ExperimentRunner::watch_finish(WatchSession& session) {
  if (!session.state) return;
  {
    std::lock_guard<std::mutex> lock(session.state->mu);
    session.state->done = true;
  }
  session.state->cv.notify_all();
  if (session.monitor.joinable()) session.monitor.join();
}

void ExperimentRunner::watch_inline_begin() {
  if (watchdog_seconds_ <= 0) return;
  inline_job_begin_ = now_seconds();
}

void ExperimentRunner::watch_inline_end(int index) {
  if (watchdog_seconds_ <= 0) return;
  const double elapsed = now_seconds() - inline_job_begin_;
  if (elapsed > watchdog_seconds_) record_hung(index, elapsed);
}

void ExperimentRunner::record_hung(int index, double elapsed_seconds) {
  std::string entry = watch_label_.empty() ? "" : watch_label_ + " ";
  entry += "rep=" + std::to_string(index) + " exceeded the " +
           std::to_string(watchdog_seconds_) + "s watchdog (running " +
           std::to_string(elapsed_seconds) + "s)";
  {
    std::lock_guard<std::mutex> lock(hung_mu_);
    hung_.push_back(entry);
  }
  std::fprintf(stderr, "[watchdog] %s\n", entry.c_str());
}

std::vector<std::string> ExperimentRunner::hung_replicates() const {
  std::lock_guard<std::mutex> lock(hung_mu_);
  return hung_;
}

double ExperimentRunner::median_replicates(
    std::uint64_t experiment, std::uint64_t cell, int reps,
    const std::function<double(std::uint64_t, int)>& fn) {
  return median(replicates(experiment, cell, reps, fn));
}

}  // namespace flowsched
