#include "runner/experiment.hpp"

#include <thread>

#include "util/stats.hpp"

namespace flowsched {
namespace {

// Same finalizer as util/rng.cpp uses to expand seeds; duplicated here so
// the seed-derivation contract cannot drift with Rng internals.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t experiment_id(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

std::uint64_t cell_id(std::initializer_list<std::uint64_t> coords) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (std::uint64_t c : coords) {
    std::uint64_t x = h ^ c;
    h = splitmix64(x);
  }
  return h;
}

std::uint64_t replicate_seed(std::uint64_t experiment, std::uint64_t cell,
                             std::uint64_t rep) {
  std::uint64_t x = experiment;
  std::uint64_t h = splitmix64(x);
  x = h ^ cell;
  h = splitmix64(x);
  x = h ^ rep;
  return splitmix64(x);
}

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ExperimentRunner::ExperimentRunner(int threads)
    : threads_(resolve_threads(threads)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

ExperimentRunner::~ExperimentRunner() = default;

std::vector<double> ExperimentRunner::replicates(
    std::uint64_t experiment, std::uint64_t cell, int reps,
    const std::function<double(std::uint64_t, int)>& fn) {
  return map<double>(reps, [&](int rep) {
    return fn(replicate_seed(experiment, cell, static_cast<std::uint64_t>(rep)),
              rep);
  });
}

double ExperimentRunner::median_replicates(
    std::uint64_t experiment, std::uint64_t cell, int reps,
    const std::function<double(std::uint64_t, int)>& fn) {
  return median(replicates(experiment, cell, reps, fn));
}

}  // namespace flowsched
