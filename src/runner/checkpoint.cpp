#include "runner/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace flowsched {

namespace {

constexpr const char* kMagic = "# flowsched-checkpoint v1";

std::string hex_id(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

SweepCheckpoint::SweepCheckpoint(std::string path, std::string experiment,
                                 std::uint64_t fingerprint)
    : path_(std::move(path)),
      experiment_(std::move(experiment)),
      fingerprint_(fingerprint) {
  std::ifstream in(path_);
  if (!in) {
    // Fresh checkpoint: write the header now so even a run killed before
    // its first cell leaves a resumable file.
    std::ofstream out(path_);
    if (!out) {
      throw std::runtime_error("SweepCheckpoint: cannot create " + path_);
    }
    out << kMagic << "\n"
        << "experiment " << experiment_ << "\n"
        << "fingerprint " << hex_id(fingerprint_) << "\n";
    out.flush();
    return;
  }

  std::string line;
  int line_no = 0;
  bool header_ok = false;
  std::string seen_experiment;
  std::string seen_fingerprint;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1) {
      if (line != kMagic) {
        throw std::runtime_error("SweepCheckpoint: " + path_ +
                                 " is not a checkpoint file");
      }
      continue;
    }
    std::istringstream ss(line);
    std::string word;
    ss >> word;
    if (word == "experiment") {
      ss >> seen_experiment;
    } else if (word == "fingerprint") {
      ss >> seen_fingerprint;
      header_ok = true;
      if (seen_experiment != experiment_ ||
          seen_fingerprint != hex_id(fingerprint_)) {
        throw std::runtime_error(
            "SweepCheckpoint: " + path_ + " belongs to experiment '" +
            seen_experiment + "' fingerprint " + seen_fingerprint +
            ", this sweep is '" + experiment_ + "' fingerprint " +
            hex_id(fingerprint_) + " — delete the file to restart");
      }
    } else if (word == "cell") {
      std::string id_tok;
      std::size_t k = 0;
      ss >> id_tok >> k;
      unsigned long long id_raw = 0;
      bool ok = !ss.fail() &&
                std::sscanf(id_tok.c_str(), "0x%llx", &id_raw) == 1;
      const std::uint64_t id = id_raw;
      std::vector<double> values;
      values.reserve(k);
      std::string val_tok;
      while (ok && values.size() < k && (ss >> val_tok)) {
        double v = 0;
        if (std::sscanf(val_tok.c_str(), "%la", &v) != 1) {
          ok = false;
          break;
        }
        values.push_back(v);
      }
      if (!ok || values.size() != k) {
        // A torn trailing line from a killed run; everything before it is
        // intact, so just stop reading here.
        std::fprintf(stderr,
                     "[checkpoint] %s line %d is truncated; ignoring it\n",
                     path_.c_str(), line_no);
        break;
      }
      if (cells_.emplace(id, std::move(values)).second) ++resumed_;
    }
    // Unknown directives are skipped (forward compatibility).
  }
  if (!header_ok) {
    throw std::runtime_error("SweepCheckpoint: " + path_ +
                             " has no fingerprint header");
  }
}

const std::vector<double>& SweepCheckpoint::get(std::uint64_t cell) const {
  auto it = cells_.find(cell);
  if (it == cells_.end()) {
    throw std::out_of_range("SweepCheckpoint: cell " + hex_id(cell) +
                            " not recorded");
  }
  return it->second;
}

void SweepCheckpoint::put(std::uint64_t cell, const std::vector<double>& values) {
  auto it = cells_.find(cell);
  if (it != cells_.end()) {
    if (it->second != values) {
      throw std::runtime_error(
          "SweepCheckpoint: cell " + hex_id(cell) +
          " recomputed to different values — non-deterministic sweep?");
    }
    return;
  }
  cells_.emplace(cell, values);
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    throw std::runtime_error("SweepCheckpoint: cannot append to " + path_);
  }
  out << "cell " << hex_id(cell) << " " << values.size();
  for (double v : values) out << " " << hexfloat(v);
  out << "\n";
  out.flush();
}

}  // namespace flowsched
