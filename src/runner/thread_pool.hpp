// Fixed-size worker thread pool with a bounded task queue.
//
// The pool is the execution substrate of the experiment runner
// (runner/experiment.hpp): benches submit independent replicate closures and
// collect std::futures. Design points:
//
//  * submit() returns a std::future of the callable's result; exceptions
//    thrown inside a task are captured and rethrown from future::get(), so
//    a failing replicate surfaces in the caller, not in a worker.
//  * The queue is bounded: submit() blocks once `max_queue` tasks are
//    pending, providing backpressure when a producer outruns the workers
//    (a grid sweep can enqueue tens of thousands of closures).
//  * Shutdown drains: the destructor (or shutdown()) lets workers finish
//    every task already submitted, then joins. Submitting after shutdown
//    throws.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace flowsched {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). `max_queue` bounds the number of
  /// pending (not yet started) tasks before submit() blocks.
  explicit ThreadPool(int threads, std::size_t max_queue = 4096);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Number of tasks submitted but not yet picked up by a worker.
  std::size_t pending() const;

  /// Enqueues `fn` and returns a future of its result. Blocks while the
  /// queue is full; throws std::runtime_error after shutdown().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only and std::function requires copyable
    // callables, so the task rides in a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock,
                     [this] { return queue_.size() < max_queue_ || stop_; });
      if (stop_) throw std::runtime_error("ThreadPool::submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    not_empty_.notify_one();
    return result;
  }

  /// Stops accepting new tasks, finishes everything already queued, joins.
  /// Idempotent; called by the destructor.
  void shutdown();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t max_queue_;
  bool stop_ = false;
};

}  // namespace flowsched
