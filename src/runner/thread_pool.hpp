// Fixed-size worker thread pool with a bounded task queue.
//
// The pool is the execution substrate of the experiment runner
// (runner/experiment.hpp): benches submit independent replicate closures and
// collect std::futures. Design points:
//
//  * submit() returns a std::future of the callable's result; exceptions
//    thrown inside a task are captured and rethrown from future::get(), so
//    a failing replicate surfaces in the caller, not in a worker.
//  * The queue is bounded: submit() blocks once `max_queue` tasks are
//    pending, providing backpressure when a producer outruns the workers
//    (a grid sweep can enqueue tens of thousands of closures).
//  * Shutdown drains: the destructor (or shutdown()) lets workers finish
//    every task already submitted, then joins. Submitting after shutdown
//    throws.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace flowsched {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). `max_queue` bounds the number of
  /// pending (not yet started) tasks before submit() blocks.
  explicit ThreadPool(int threads, std::size_t max_queue = 4096);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Number of tasks submitted but not yet picked up by a worker.
  std::size_t pending() const;

  /// Enqueues `fn` and returns a future of its result. Blocks while the
  /// queue is full; throws std::runtime_error after shutdown().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only and std::function requires copyable
    // callables, so the task rides in a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock,
                     [this] { return queue_.size() < max_queue_ || stop_; });
      if (stop_) throw std::runtime_error("ThreadPool::submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    not_empty_.notify_one();
    return result;
  }

  /// Stops accepting new tasks, finishes everything already queued, joins.
  /// Idempotent; called by the destructor.
  void shutdown();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t max_queue_;
  bool stop_ = false;
};

/// \brief Process-wide core ledger coordinating NESTED parallelism: sweep
/// workers (ExperimentRunner's pool) and per-simulation shard workers
/// (sched/sharded) draw threads from the same physical machine, and without
/// a shared ledger a 16-thread sweep of 8-shard simulations would spawn 128
/// runnable threads on 16 cores.
///
/// Two claim flavours:
///  * reserve(n): an OUTER claim, never capped — the sweep pool states what
///    it owns (its workers exist regardless), so inner layers can see it.
///  * try_acquire(n): an INNER claim, granted only from the uncommitted
///    remainder (possibly 0) — shard engines auto-sizing their worker count
///    use this and fall back to fewer (or zero extra) workers when the
///    sweep already owns the machine. Callers pinning an explicit
///    --shard-workers count bypass this and reserve() instead.
///
/// Determinism note: the grant only sizes the thread team executing an
/// epoch; the sharded engine's OUTPUT is invariant to its worker count by
/// construction, so budget pressure changes wall-clock, never results.
class CoreBudget {
 public:
  /// The process-wide instance (function-local static, thread-safe init).
  static CoreBudget& instance();

  /// Overrides the budget total; `total <= 0` restores the hardware default.
  void set_total(int total);
  int total() const;
  /// Cores currently claimed (reserved + granted).
  int claimed() const;

  /// Records an outer claim of `n` cores (n >= 0; never capped).
  void reserve(int n);
  /// Grants min(n, uncommitted remainder) cores and records the grant.
  int try_acquire(int n);
  /// Returns `n` previously reserved/granted cores to the ledger.
  void release(int n);

 private:
  CoreBudget();
  mutable std::mutex mutex_;
  int total_ = 0;
  int claimed_ = 0;
};

}  // namespace flowsched
