// Theorem 10 adversary: EFT with ANY tie-break policy vs fixed-size
// intervals.
//
// Wraps the Theorem 8 regular stream with two rounds of tiny "calibration"
// tasks at each integer time t. The calibration tasks stagger the machines'
// availability by a per-machine delay of (j+1)*delta, so ties between
// machines never occur and every EFT variant is forced to reproduce the
// EFT-Min decisions on the regular tasks — hence Fmax >= m - k + 1 again,
// for an offline optimum of 1 + o(1) (the total calibration volume is
// O(m^2 * delta) per step).
//
// First round:  while an idle machine exists, submit a task of length
//               c*epsilon covering the lowest idle machine (c = 1, 2, ...).
// Second round: for each first-round task that landed on machine M_i,
//               submit a task of length (i+1)*delta - c*epsilon covering
//               M_i; EFT has no choice but to put it on M_i, topping every
//               idle machine's frontier up to exactly t + (i+1)*delta.
//
// delta and epsilon are powers of two (2^-20 and 2^-32), exactly
// representable and orders of magnitude above the dispatcher's 1e-12 tie
// tolerance, so the construction is numerically exact.
#pragma once

#include "adversary/adversary.hpp"
#include "sched/dispatchers.hpp"

namespace flowsched {

/// Delay granularity of the construction.
constexpr double kTh10Delta = 0x1.0p-20;
constexpr double kTh10Epsilon = 0x1.0p-32;

/// Runs the padded stream against any EFT tie-break (or any other
/// immediate-dispatch algorithm). Requires 1 < k < m and m <= 1024 (so that
/// epsilon < delta / (2m) holds strictly). steps < 0 picks the same default
/// horizon as run_th8.
AdversaryResult run_th10_smalltask(Dispatcher& dispatcher, int m, int k,
                                   int steps = -1);

}  // namespace flowsched
