// Common result type for the lower-bound adversaries of Section 6.
//
// Each adversary produces the schedule an online algorithm was driven into,
// together with the offline optimum the paper derives analytically for the
// same instance (cross-checked against the exact unit-task optimum in the
// test suite). The achieved/opt ratio is the empirical competitive-ratio
// witness for the corresponding theorem.
#pragma once

#include "model/schedule.hpp"

namespace flowsched {

struct AdversaryResult {
  Schedule schedule;      ///< Self-contained (owns its instance).
  double opt_fmax = 0.0;  ///< Offline optimum per the paper's argument.
  double achieved_fmax = 0.0;
  double lower_bound = 0.0;  ///< The theorem's guaranteed ratio, for reports.
  /// Fmax the construction's closed form predicts for THIS run (finite p),
  /// e.g. (L+1)p - L for Theorem 3. The bounds library reproduces the same
  /// value simulation-free (bounds/bounds.hpp theoremN_predicted_fmax);
  /// tests/test_bounds.cpp asserts formula == predicted == achieved where
  /// the proof is exact.
  double predicted_fmax = 0.0;

  double ratio() const;
};

}  // namespace flowsched
