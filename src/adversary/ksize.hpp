// Theorem 4 adversary: equal-size (|M_i| = k) unstructured sets vs
// immediate dispatch.
//
// Works on m = k^L machines. Round l = 1..L releases m/k^l tasks of length p
// at time l-1; their processing sets partition the machines used in round
// l-1 into disjoint groups of size k, so the dispatcher is forced to pile
// round after round onto the same shrinking core. After round L one machine
// has accumulated L tasks, giving Fmax >= L*p - (L-1) while the offline
// optimum schedules each round on machines abandoned afterwards, for
// Fmax = p.
#pragma once

#include "adversary/adversary.hpp"
#include "sched/dispatchers.hpp"

namespace flowsched {

/// `m_prime` is rounded down to the largest power of k. Requires k >= 2 and
/// p > log_k(m).
AdversaryResult run_th4_ksize(Dispatcher& dispatcher, int m_prime, int k,
                              double p);

}  // namespace flowsched
