// Theorem 3 adversary: inclusive processing sets vs immediate dispatch.
//
// Works on m = 2^L machines (the largest power of two <= the given m').
// Round l = 1..L releases m/2^l tasks of length p at time l-1, restricted to
// the nested subset M(l); M(l+1) is chosen adaptively as the m/2^l machines
// of M(l) holding the most allocated tasks (the counting argument in the
// proof guarantees they hold at least l*m/2^l of them). A final task on the
// most loaded machine at time L forces Fmax >= (L+1)p - L, while the
// offline optimum schedules each round on M(l) \ M(l+1) for Fmax = p.
// The resulting family {M(l)} is inclusive by construction.
#pragma once

#include "adversary/adversary.hpp"
#include "sched/dispatchers.hpp"

namespace flowsched {

/// Runs the adversary against an immediate-dispatch algorithm. `p` is the
/// task length; the theorem needs p > log2(m) (enforced; the competitive
/// ratio approaches floor(log2(m')+1) as p grows).
AdversaryResult run_th3_inclusive(Dispatcher& dispatcher, int m_prime,
                                  double p);

}  // namespace flowsched
