#include "adversary/th8_stream.hpp"

#include <memory>
#include <stdexcept>

#include "sched/engine.hpp"

namespace flowsched {
namespace {

void check_mk(int m, int k) {
  if (!(1 < k && k < m)) {
    throw std::invalid_argument("th8: requires 1 < k < m");
  }
}

// One adversary step: the m tasks released at time t, in order.
std::vector<Task> th8_step(int m, int k, double t) {
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(m));
  for (int i = 1; i <= m; ++i) {
    const int type = th8_task_type(i, m, k);       // 1-based interval start
    const int lo = type - 1;                       // 0-based
    tasks.push_back(Task{.release = t,
                         .proc = 1.0,
                         .eligible = ProcSet::interval(lo, lo + k - 1)});
  }
  return tasks;
}

}  // namespace

int th8_task_type(int i, int m, int k) {
  check_mk(m, k);
  if (i < 1 || i > m) throw std::invalid_argument("th8_task_type: i outside [1,m]");
  return i <= m - k ? m - k - i + 2 : 1;
}

Instance th8_instance(int m, int k, int steps) {
  check_mk(m, k);
  if (steps <= 0) throw std::invalid_argument("th8_instance: steps <= 0");
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(m) * static_cast<std::size_t>(steps));
  for (int t = 0; t < steps; ++t) {
    for (auto& task : th8_step(m, k, static_cast<double>(t))) {
      tasks.push_back(std::move(task));
    }
  }
  return Instance(m, std::move(tasks));
}

Schedule th8_optimal_schedule(const Instance& inst, int m, int k) {
  check_mk(m, k);
  if (inst.n() % m != 0) {
    throw std::invalid_argument("th8_optimal_schedule: not a th8 instance");
  }
  Schedule sched(inst);
  for (int idx = 0; idx < inst.n(); ++idx) {
    const int step = idx / m;
    const int i = idx % m + 1;  // 1-based position within the step
    // Type >= k+1 tasks go to their highest compatible machine (m-i+1,
    // 1-based), reserving M_1..M_k for the k final type-1 tasks.
    const int machine_1based = i <= m - k ? m - i + 1 : i - (m - k);
    sched.assign(idx, machine_1based - 1, static_cast<double>(step));
  }
  return sched;
}

AdversaryResult run_th8(Dispatcher& dispatcher, int m, int k, int steps) {
  check_mk(m, k);
  if (steps < 0) {
    // Theorem 8's argument needs at most ~m^3 steps; empirically the stable
    // profile is reached within a small multiple of m. Keep a generous
    // margin while staying cheap for the bench sizes (m <= ~64).
    steps = 4 * m * m + 8;
  }
  OnlineEngine engine(m, dispatcher);
  for (int t = 0; t < steps; ++t) {
    for (auto& task : th8_step(m, k, static_cast<double>(t))) {
      engine.release(std::move(task));
    }
  }
  AdversaryResult result{engine.snapshot(), 1.0, 0.0,
                         static_cast<double>(m - k + 1)};
  // Steady state: machine M_1 accumulates a backlog of m - k type-1 tasks,
  // so the last one flows m - k + 1 while OPT stays at 1.
  result.predicted_fmax = static_cast<double>(m - k + 1);
  result.achieved_fmax = result.schedule.max_flow();
  return result;
}

}  // namespace flowsched
