// Online-algorithm oracle for adaptive adversaries.
//
// Theorems 5 and 7 hold for ANY online algorithm, not only immediate
// dispatchers. An adaptive adversary may observe, at time t, everything the
// algorithm has irrevocably done by t — for a non-preemptive algorithm that
// includes which tasks have completed, since completions by time t cannot
// depend on releases after t. OnlineOracle captures exactly this interface:
//
//   * DispatcherOracle wraps an immediate-dispatch policy (the assignment
//     is fixed at release, so completions are known immediately);
//   * FifoEligibleOracle wraps the queue-based FIFO-eligible scheduler by
//     re-simulating it on the releases so far (FIFO's decisions never use
//     future information, so the re-simulation reproduces its true state).
#pragma once

#include <memory>
#include <vector>

#include "model/schedule.hpp"
#include "sched/dispatchers.hpp"
#include "sched/engine.hpp"
#include "sched/tiebreak.hpp"

namespace flowsched {

class OnlineOracle {
 public:
  virtual ~OnlineOracle() = default;

  virtual int m() const = 0;
  virtual int released() const = 0;

  /// Releases one task (non-decreasing release times).
  virtual void release(Task task) = 0;

  /// Completion time of task `idx` given the releases so far. Valid for
  /// "completed by t" queries with t up to the current release frontier.
  virtual double completion(int idx) = 0;

  /// Self-contained schedule of everything released so far.
  virtual Schedule snapshot() = 0;
};

/// Oracle over an immediate-dispatch algorithm.
class DispatcherOracle final : public OnlineOracle {
 public:
  DispatcherOracle(int m, Dispatcher& dispatcher) : engine_(m, dispatcher) {}

  int m() const override { return engine_.m(); }
  int released() const override { return engine_.released(); }
  void release(Task task) override { engine_.release(std::move(task)); }
  double completion(int idx) override { return engine_.completion_of(idx); }
  Schedule snapshot() override { return engine_.snapshot(); }

 private:
  OnlineEngine engine_;
};

/// Oracle over the queue-based FIFO-eligible scheduler (sched/fifo.hpp).
class FifoEligibleOracle final : public OnlineOracle {
 public:
  explicit FifoEligibleOracle(int m, TieBreakKind tie = TieBreakKind::kMin,
                              std::uint64_t seed = 0);

  int m() const override { return m_; }
  int released() const override { return static_cast<int>(tasks_.size()); }
  void release(Task task) override;
  double completion(int idx) override;
  Schedule snapshot() override;

 private:
  void refresh();  ///< Re-simulates if new tasks arrived since last query.

  int m_;
  TieBreakKind tie_;
  std::uint64_t seed_;
  std::vector<Task> tasks_;
  double last_release_ = 0.0;
  std::size_t simulated_count_ = 0;
  std::shared_ptr<Instance> cached_instance_;
  std::unique_ptr<Schedule> cached_schedule_;
};

}  // namespace flowsched
