// The Theorem 8 adversary: EFT-Min vs fixed-size interval processing sets.
//
// At every integer time t the adversary releases m unit tasks, in order:
//   * tasks i = 1..m-k of "type" m-k-i+2 (1-based): their interval starts
//     high and walks down — type lambda means M_i = {M_lambda..M_lambda+k-1};
//   * tasks i = m-k+1..m of type 1 (interval {M_1..M_k}).
//
// The instance is oblivious (non-adaptive): the same stream defeats EFT-Min
// regardless of its choices, driving its schedule profile to the stable
// profile w_tau(j) = min(m-j, m-k) and forcing Fmax >= m-k+1, while the
// offline optimum keeps every flow at 1 (each task of type >= k+1 goes to
// the highest compatible machine, reserving M_1..M_k for the k type-1
// tasks).
#pragma once

#include "adversary/adversary.hpp"
#include "model/instance.hpp"
#include "sched/dispatchers.hpp"

namespace flowsched {

/// Type (1-based interval start) of the i-th task (1-based) released at each
/// step: m-k-i+2 for i <= m-k, and 1 afterwards.
int th8_task_type(int i, int m, int k);

/// The full stream for `steps` time steps (steps * m unit tasks).
Instance th8_instance(int m, int k, int steps);

/// The paper's optimal per-step assignment (every flow = 1), for display and
/// verification.
Schedule th8_optimal_schedule(const Instance& inst, int m, int k);

/// Runs `dispatcher` (typically EFT-Min) against the stream. The number of
/// steps defaults to enough for convergence (Theorem 8 proves at most ~m^3
/// steps are needed; in practice convergence is much faster).
AdversaryResult run_th8(Dispatcher& dispatcher, int m, int k, int steps = -1);

}  // namespace flowsched
