#include "adversary/inclusive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sched/engine.hpp"

namespace flowsched {

AdversaryResult run_th3_inclusive(Dispatcher& dispatcher, int m_prime,
                                  double p) {
  if (m_prime < 2) throw std::invalid_argument("th3: need m >= 2");
  const int levels = static_cast<int>(std::floor(std::log2(m_prime)));
  const int m = 1 << levels;  // power-of-two sub-cluster
  if (!(p > levels)) throw std::invalid_argument("th3: need p > log2(m)");

  OnlineEngine engine(m, dispatcher);
  // current holds M(l), initially all machines.
  std::vector<int> current = ProcSet::all(m).machines();

  for (int l = 1; l <= levels; ++l) {
    const int count = m >> l;  // |T(l)| = m / 2^l
    const ProcSet set{std::vector<int>(current)};
    for (int i = 0; i < count; ++i) {
      engine.release(Task{.release = static_cast<double>(l - 1),
                          .proc = p,
                          .eligible = set});
    }
    // M(l+1): the m/2^l most loaded machines of M(l) (by task count).
    std::stable_sort(current.begin(), current.end(), [&engine](int a, int b) {
      return engine.count_of(a) > engine.count_of(b);
    });
    current.resize(static_cast<std::size_t>(count));
    std::sort(current.begin(), current.end());
  }

  // Final task at time L on the single most-loaded remaining machine.
  const int last = *std::max_element(
      current.begin(), current.end(), [&engine](int a, int b) {
        return engine.count_of(a) < engine.count_of(b);
      });
  engine.release(Task{.release = static_cast<double>(levels),
                      .proc = p,
                      .eligible = ProcSet::single(last)});

  AdversaryResult result{engine.snapshot(), p, 0.0,
                         std::floor(std::log2(m_prime) + 1)};
  // The final singleton waits behind L levels of length-(p-1) residue and
  // then runs for p: Fmax = (L+1)p - L exactly.
  result.predicted_fmax = (levels + 1) * p - levels;
  result.achieved_fmax = result.schedule.max_flow();
  return result;
}

}  // namespace flowsched
