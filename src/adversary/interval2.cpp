#include "adversary/interval2.hpp"

#include <stdexcept>

namespace flowsched {

AdversaryResult run_th7_interval(OnlineOracle& oracle, double p) {
  if (!(p >= 1)) throw std::invalid_argument("th7: need p >= 1");
  if (oracle.m() != 4) throw std::invalid_argument("th7: oracle must have 4 machines");

  // T1 on {M2, M3} (0-based {1, 2}).
  oracle.release(Task{.release = 0.0, .proc = p, .eligible = ProcSet({1, 2})});

  // Where did T1 go? Any online algorithm has started it by now or will
  // start it at its earliest opportunity; the snapshot after the single
  // release reveals the committed machine (for queue-based algorithms the
  // assignment with no competing tasks is immediate).
  const Schedule first = oracle.snapshot();
  const int chosen = first.machine(0);
  const double start = first.start(0);

  // Respond on the side the algorithm blocked, one unit after the start.
  const ProcSet follow_up = chosen == 1 ? ProcSet({0, 1}) : ProcSet({2, 3});
  const double t = start + 1.0;
  oracle.release(Task{.release = t, .proc = p, .eligible = follow_up});
  oracle.release(Task{.release = t, .proc = p, .eligible = follow_up});

  AdversaryResult result{oracle.snapshot(), p, 0.0, 2.0};
  // One follow-up queues behind the probe on the blocked side: it starts at
  // start + p, finishing p later, released at start + 1: Fmax = 2p - 1.
  result.predicted_fmax = 2 * p - 1;
  result.achieved_fmax = result.schedule.max_flow();
  return result;
}

AdversaryResult run_th7_interval(Dispatcher& dispatcher, double p) {
  DispatcherOracle oracle(4, dispatcher);
  return run_th7_interval(oracle, p);
}

}  // namespace flowsched
