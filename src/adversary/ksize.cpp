#include "adversary/ksize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sched/engine.hpp"

namespace flowsched {

AdversaryResult run_th4_ksize(Dispatcher& dispatcher, int m_prime, int k,
                              double p) {
  if (k < 2) throw std::invalid_argument("th4: need k >= 2");
  if (m_prime < k) throw std::invalid_argument("th4: need m >= k");
  int levels = 0;
  long long m = 1;
  while (m * k <= m_prime) {
    m *= k;
    ++levels;
  }
  if (levels == 0) throw std::invalid_argument("th4: need m >= k");
  if (!(p > levels)) throw std::invalid_argument("th4: need p > log_k(m)");

  OnlineEngine engine(static_cast<int>(m), dispatcher);
  // previous = M(l-1): machines used by the previous round; M(0) = all.
  std::vector<int> previous = ProcSet::all(static_cast<int>(m)).machines();

  for (int l = 1; l <= levels; ++l) {
    const auto group_count = previous.size() / static_cast<std::size_t>(k);
    std::vector<int> used;
    used.reserve(group_count);
    for (std::size_t g = 0; g < group_count; ++g) {
      std::vector<int> group(previous.begin() + static_cast<std::ptrdiff_t>(g * k),
                             previous.begin() + static_cast<std::ptrdiff_t>((g + 1) * k));
      const Assignment a =
          engine.release(Task{.release = static_cast<double>(l - 1),
                              .proc = p,
                              .eligible = ProcSet(std::move(group))});
      used.push_back(a.machine);
    }
    std::sort(used.begin(), used.end());
    previous = std::move(used);
  }

  // floor(log_k(m')) computed exactly by the integer loop above; the
  // floating log ratio is off by one for e.g. m' = 243, k = 3.
  AdversaryResult result{engine.snapshot(), p, 0.0,
                         static_cast<double>(levels)};
  // Level l's survivor carries l stacked tasks less the (l-1) elapsed unit
  // gaps: Fmax = Lp - (L-1) exactly.
  result.predicted_fmax = levels * p - (levels - 1);
  result.achieved_fmax = result.schedule.max_flow();
  return result;
}

}  // namespace flowsched
