#include "adversary/adversary.hpp"

#include <stdexcept>

namespace flowsched {

double AdversaryResult::ratio() const {
  if (!(opt_fmax > 0)) throw std::logic_error("AdversaryResult: opt <= 0");
  return achieved_fmax / opt_fmax;
}

}  // namespace flowsched
