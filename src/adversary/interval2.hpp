// Theorem 7 adversary: fixed-size intervals vs any online algorithm,
// lower bound 2.
//
// At time 0 one task of length p is released on {M2, M3}. Once the
// algorithm commits it to a machine (immediate dispatch), the adversary
// answers with two more length-p tasks at time sigma_1 + 1 on the side the
// algorithm just blocked: {M1, M2} if it chose M2, {M3, M4} if it chose M3.
// One of the two must wait behind the first task, forcing Fmax >= 2p - 1,
// while the offline optimum (which runs the first task on the other
// machine) achieves Fmax = p. Ratio -> 2 as p grows.
#pragma once

#include "adversary/adversary.hpp"
#include "adversary/oracle.hpp"
#include "sched/dispatchers.hpp"

namespace flowsched {

/// General form: any online algorithm through its oracle, which must be
/// built with exactly 4 machines. Requires p >= 1. The adversary observes
/// which machine ran T1 (known once T1 completes; every online algorithm
/// has committed by sigma_1 + 1, where it answers).
AdversaryResult run_th7_interval(OnlineOracle& oracle, double p);

/// Convenience overload for immediate-dispatch algorithms.
AdversaryResult run_th7_interval(Dispatcher& dispatcher, double p);

}  // namespace flowsched
