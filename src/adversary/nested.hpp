// Theorem 5 adversary: nested processing sets vs any online algorithm.
//
// Interval-halving construction on m = 2^L machines with unit tasks and
// F = log2(m) + 2. Phase k (k = 0..L) works on an interval I(u_k, s_k)
// (s_k = m / 2^k): it releases s_k interval-wide tasks (G1,k) at t_k, plus
// F per-machine singleton tasks (G2,k) on every machine of the interval at
// times t_k .. t_k + F - 1. At t_{k+1} = t_k + F the adversary inspects the
// algorithm's progress and recurses into the half of the interval holding
// the most uncompleted singleton tasks. The counting argument guarantees
// log2(m) uncompleted tasks pile on a single machine, forcing
// Fmax >= log2(m) + 2, while the offline optimum keeps Fmax <= 3 by running
// each G1,k on the abandoned half.
//
// The adversary only queries completion times of tasks the algorithm has
// already committed (immediate dispatch), which is the information an
// adversary legitimately has at time t_{k+1}.
#pragma once

#include "adversary/adversary.hpp"
#include "adversary/oracle.hpp"
#include "sched/dispatchers.hpp"

namespace flowsched {

/// General form: drives any online algorithm through its oracle. The oracle
/// must be freshly constructed for `m = 2^floor(log2(m_prime))` machines.
AdversaryResult run_th5_nested(OnlineOracle& oracle, int m_prime);

/// Convenience overload for immediate-dispatch algorithms.
AdversaryResult run_th5_nested(Dispatcher& dispatcher, int m_prime);

/// Number of machines the oracle must be built with for a given m'.
int th5_machine_count(int m_prime);

}  // namespace flowsched
