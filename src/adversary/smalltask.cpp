#include "adversary/smalltask.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "adversary/th8_stream.hpp"
#include "sched/engine.hpp"

namespace flowsched {
namespace {

// Size-k interval covering machine j (clamped at the top end).
ProcSet covering_interval(int j, int k, int m) {
  const int lo = std::min(j, m - k);
  return ProcSet::interval(lo, lo + k - 1);
}

}  // namespace

AdversaryResult run_th10_smalltask(Dispatcher& dispatcher, int m, int k,
                                   int steps) {
  if (!(1 < k && k < m)) throw std::invalid_argument("th10: requires 1 < k < m");
  if (m > 1024) throw std::invalid_argument("th10: m too large for epsilon margin");
  if (steps < 0) steps = 4 * m * m + 8;

  OnlineEngine engine(m, dispatcher);

  for (int step = 0; step < steps; ++step) {
    const double t = step;

    // --- First round of calibration tasks. ---
    std::vector<std::pair<int, int>> landed;  // (c, machine)
    int c = 1;
    while (true) {
      // Lowest idle machine at time t.
      int idle = -1;
      for (int j = 0; j < m; ++j) {
        if (engine.completions()[static_cast<std::size_t>(j)] <= t) {
          idle = j;
          break;
        }
      }
      if (idle < 0) break;
      const Assignment a = engine.release(
          Task{.release = t,
               .proc = c * kTh10Epsilon,
               .eligible = covering_interval(idle, k, m)});
      landed.emplace_back(c, a.machine);
      ++c;
    }

    // --- Second round: top every calibrated machine up to t + (i+1)*delta. ---
    for (const auto& [round_c, machine] : landed) {
      engine.release(Task{.release = t,
                          .proc = (machine + 1) * kTh10Delta -
                                  round_c * kTh10Epsilon,
                          .eligible = covering_interval(machine, k, m)});
    }

    // --- Regular Theorem-8 tasks. ---
    for (int i = 1; i <= m; ++i) {
      const int lo = th8_task_type(i, m, k) - 1;
      engine.release(Task{.release = t,
                          .proc = 1.0,
                          .eligible = ProcSet::interval(lo, lo + k - 1)});
    }
  }

  // The offline optimum of the regular stream alone is 1; assigning each
  // calibration task anywhere in its interval delays any machine by at most
  // sum_i (i+1)*delta = O(m^2 delta) per step, absorbed before the next
  // step, so OPT <= 1 + m(m+1)/2 * delta (the paper's "1 + o(1)").
  const double opt = 1.0 + 0.5 * m * (m + 1) * kTh10Delta;
  AdversaryResult result{engine.snapshot(), opt, 0.0,
                         static_cast<double>(m - k + 1)};
  // The regular stream reaches the same m - k + 1 steady state as Theorem
  // 8; the calibration padding only nudges the optimum, not the backlog.
  result.predicted_fmax = static_cast<double>(m - k + 1);
  result.achieved_fmax = result.schedule.max_flow();
  return result;
}

}  // namespace flowsched
