#include "adversary/phi.hpp"

#include <cmath>
#include <stdexcept>

#include "model/profile.hpp"

namespace flowsched {

double phi_weighted_distance(const std::vector<double>& w, int m, int k, int j) {
  if (j < 0 || j >= m || static_cast<int>(w.size()) != m) {
    throw std::invalid_argument("phi: bad machine index or profile size");
  }
  const double w_tau = stable_profile(m, k)[static_cast<std::size_t>(j)];
  return std::pow(2.0, w_tau) * (m - k + 1 - w[static_cast<std::size_t>(j)]);
}

double phi_total(const std::vector<double>& w, int m, int k) {
  return phi_partial(w, m, k, 0, m - 1);
}

double phi_partial(const std::vector<double>& w, int m, int k, int j1, int j2) {
  if (j1 > j2) throw std::invalid_argument("phi_partial: j1 > j2");
  double total = 0;
  for (int j = j1; j <= j2; ++j) total += phi_weighted_distance(w, m, k, j);
  return total;
}

}  // namespace flowsched
