#include "adversary/nested.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace flowsched {

int th5_machine_count(int m_prime) {
  if (m_prime < 4) throw std::invalid_argument("th5: need m >= 4");
  return 1 << static_cast<int>(std::floor(std::log2(m_prime)));
}

AdversaryResult run_th5_nested(OnlineOracle& oracle, int m_prime) {
  const int m = th5_machine_count(m_prime);
  if (oracle.m() != m) {
    throw std::invalid_argument("th5: oracle must have 2^floor(log2(m')) machines");
  }
  const int levels = static_cast<int>(std::floor(std::log2(m_prime)));
  const int F = levels + 2;

  int u = 0;
  int s = m;
  double t = 0.0;

  for (int k = 0; k <= levels; ++k) {
    // G1,k: s interval-wide unit tasks at t.
    const ProcSet interval = ProcSet::interval(u, u + s - 1);
    for (int i = 0; i < s; ++i) {
      oracle.release(Task{.release = t, .proc = 1.0, .eligible = interval});
    }
    // G2,k: for each machine of the interval, one singleton unit task at
    // each of t, t+1, ..., t+F-1. Remember oracle indices per machine.
    std::vector<std::vector<int>> singletons(static_cast<std::size_t>(s));
    for (int o = 0; o < F; ++o) {
      for (int j = u; j < u + s; ++j) {
        oracle.release(Task{.release = t + o,
                            .proc = 1.0,
                            .eligible = ProcSet::single(j)});
        singletons[static_cast<std::size_t>(j - u)].push_back(oracle.released() - 1);
      }
    }
    if (k == levels) break;

    // Recurse into the half of I(u, s) holding the most singleton tasks of
    // this round still uncompleted at t + F.
    const double t_next = t + F;
    const int half = s / 2;
    int best_u = u;
    int best_count = -1;
    for (int h = 0; h < 2; ++h) {
      const int hu = u + h * half;
      int count = 0;
      for (int j = hu; j < hu + half; ++j) {
        for (int idx : singletons[static_cast<std::size_t>(j - u)]) {
          if (oracle.completion(idx) > t_next) ++count;
        }
      }
      if (count > best_count) {
        best_count = count;
        best_u = hu;
      }
    }
    u = best_u;
    s = half;
    t = t_next;
  }

  AdversaryResult result{oracle.snapshot(), 3.0, 0.0,
                         std::floor(std::log2(m_prime) + 2) / 3.0};
  // Some singleton of the last interval is forced to flow F = L + 2 (unit
  // tasks; no p parameter).
  result.predicted_fmax = F;
  result.achieved_fmax = result.schedule.max_flow();
  return result;
}

AdversaryResult run_th5_nested(Dispatcher& dispatcher, int m_prime) {
  DispatcherOracle oracle(th5_machine_count(m_prime), dispatcher);
  return run_th5_nested(oracle, m_prime);
}

}  // namespace flowsched
