// The weighted distance Phi of Theorem 9's proof (Lemmas 5 and 6).
//
//   phi_t(j) = 2^{w_tau(j)} * (m - k + 1 - w_t(j)),     Phi_t = sum_j phi_t(j)
//
// measures how far the EFT schedule profile w_t is from (a simplified form
// of) the stable profile w_tau. Lemma 5 proves Phi never increases under
// the Theorem 8 adversary, and strictly decreases whenever some early task
// is not placed on its "last machine"; Theorem 9 turns this into the
// almost-sure m-k+1 bound for EFT-Rand. These helpers let the test suite
// and benches verify the monotone descent computationally.
#pragma once

#include <vector>

namespace flowsched {

/// phi_t(j) for a 0-based profile w (paper's 1-based j translated).
double phi_weighted_distance(const std::vector<double>& w, int m, int k, int j);

/// Phi_t = sum over machines.
double phi_total(const std::vector<double>& w, int m, int k);

/// Partial sum Phi_t(j1, j2), 0-based inclusive bounds.
double phi_partial(const std::vector<double>& w, int m, int k, int j1, int j2);

}  // namespace flowsched
