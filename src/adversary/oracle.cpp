#include "adversary/oracle.hpp"

#include <stdexcept>

#include "sched/fifo.hpp"

namespace flowsched {

FifoEligibleOracle::FifoEligibleOracle(int m, TieBreakKind tie,
                                       std::uint64_t seed)
    : m_(m), tie_(tie), seed_(seed) {
  if (m <= 0) throw std::invalid_argument("FifoEligibleOracle: m <= 0");
}

void FifoEligibleOracle::release(Task task) {
  if (task.release < last_release_) {
    throw std::invalid_argument("FifoEligibleOracle: decreasing releases");
  }
  last_release_ = task.release;
  if (task.eligible.empty()) task.eligible = ProcSet::all(m_);
  tasks_.push_back(std::move(task));
}

void FifoEligibleOracle::refresh() {
  if (cached_schedule_ != nullptr && simulated_count_ == tasks_.size()) return;
  cached_instance_ = std::make_shared<Instance>(m_, tasks_);
  const Schedule sched = fifo_eligible_schedule(*cached_instance_, tie_, seed_);
  // Copy into an owning schedule so the cached instance stays alive.
  cached_schedule_ = std::make_unique<Schedule>(cached_instance_);
  for (int i = 0; i < cached_instance_->n(); ++i) {
    cached_schedule_->assign(i, sched.machine(i), sched.start(i));
  }
  simulated_count_ = tasks_.size();
}

double FifoEligibleOracle::completion(int idx) {
  refresh();
  return cached_schedule_->completion(idx);
}

Schedule FifoEligibleOracle::snapshot() {
  refresh();
  return *cached_schedule_;
}

}  // namespace flowsched
