#include "offline/lmax.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

#include "offline/matching.hpp"
#include "offline/preemptive_optimal.hpp"

namespace flowsched {

DeadlineInstance::DeadlineInstance(int m, std::vector<DeadlineTask> tasks)
    : m_(m),
      tasks_(std::move(tasks)),
      instance_(m, [this] {
        std::vector<Task> plain;
        plain.reserve(tasks_.size());
        for (const auto& dt : tasks_) plain.push_back(dt.task);
        return plain;
      }()) {
  for (const auto& dt : tasks_) {
    if (dt.deadline < dt.task.release) {
      throw std::invalid_argument("DeadlineInstance: deadline before release");
    }
  }
  // The Instance re-sorts by release (stably); mirror that order for the
  // deadlines so indices stay aligned.
  std::stable_sort(tasks_.begin(), tasks_.end(),
                   [](const DeadlineTask& a, const DeadlineTask& b) {
                     return a.task.release < b.task.release;
                   });
  deadlines_.reserve(tasks_.size());
  for (const auto& dt : tasks_) deadlines_.push_back(dt.deadline);
}

DeadlineInstance DeadlineInstance::fmax_view(const Instance& inst) {
  std::vector<DeadlineTask> tasks;
  tasks.reserve(static_cast<std::size_t>(inst.n()));
  for (const Task& t : inst.tasks()) {
    tasks.push_back(DeadlineTask{t, t.release});
  }
  return DeadlineInstance(inst.m(), std::move(tasks));
}

bool unit_lmax_feasible(const DeadlineInstance& inst, int L) {
  const Instance& plain = inst.instance();
  const int n = plain.n();
  if (n == 0) return true;
  for (const Task& t : plain.tasks()) {
    if (t.proc != 1.0) {
      throw std::invalid_argument("unit_lmax: non-unit processing time");
    }
    if (t.release != std::floor(t.release)) {
      throw std::invalid_argument("unit_lmax: non-integer release");
    }
  }

  std::map<std::pair<long long, int>, int> slot_id;
  std::vector<std::pair<long long, int>> slot_of;
  std::vector<std::vector<int>> task_slots(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Task& t = plain.task(i);
    const double d = inst.deadline(i);
    if (d != std::floor(d)) {
      throw std::invalid_argument("unit_lmax: non-integer deadline");
    }
    const auto r = static_cast<long long>(t.release);
    // Latest useful start: completion by d + L, and never beyond
    // r + n - 1 (a feasible schedule can always be left-shifted so every
    // task starts within n slots of its own release — only n-1 competitors
    // exist, and starting earlier never violates a deadline).
    const long long last =
        std::min(static_cast<long long>(d) + L - 1, r + n - 1);
    if (last < r) return false;  // empty window
    for (long long slot = r; slot <= last; ++slot) {
      for (int j : t.eligible.machines()) {
        const auto key = std::make_pair(slot, j);
        auto [it, inserted] = slot_id.try_emplace(key, static_cast<int>(slot_of.size()));
        if (inserted) slot_of.push_back(key);
        task_slots[static_cast<std::size_t>(i)].push_back(it->second);
      }
    }
  }

  BipartiteMatching matching(n, static_cast<int>(slot_of.size()));
  for (int i = 0; i < n; ++i) {
    for (int s : task_slots[static_cast<std::size_t>(i)]) matching.add_edge(i, s);
  }
  return matching.solve() == n;
}

int unit_optimal_lmax(const DeadlineInstance& inst) {
  const Instance& plain = inst.instance();
  if (plain.n() == 0) return 0;
  // Lateness of task i is at least r_i + 1 - d_i; Lmax can't beat the max.
  long long lo = std::numeric_limits<long long>::min();
  long long hi = 0;
  for (int i = 0; i < plain.n(); ++i) {
    const auto floor_bound = static_cast<long long>(plain.task(i).release) + 1 -
                             static_cast<long long>(inst.deadline(i));
    lo = std::max(lo, floor_bound);
    // Serializing everything after the last release bounds the optimum.
    hi = std::max(hi, floor_bound + plain.n());
  }
  if (!unit_lmax_feasible(inst, static_cast<int>(hi))) {
    throw std::logic_error("unit_optimal_lmax: upper bound infeasible (bug)");
  }
  while (lo < hi) {
    const long long mid = lo + (hi - lo) / 2;
    if (unit_lmax_feasible(inst, static_cast<int>(mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return static_cast<int>(lo);
}

bool preemptive_lmax_feasible(const DeadlineInstance& inst, double L) {
  const Instance& plain = inst.instance();
  std::vector<double> deadlines;
  deadlines.reserve(static_cast<std::size_t>(plain.n()));
  for (int i = 0; i < plain.n(); ++i) deadlines.push_back(inst.deadline(i) + L);
  return preemptive_deadline_feasible(plain, deadlines);
}

double preemptive_optimal_lmax(const DeadlineInstance& inst, double tol) {
  const Instance& plain = inst.instance();
  if (plain.n() == 0) return 0.0;
  double lo = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < plain.n(); ++i) {
    lo = std::max(lo, plain.task(i).release + plain.task(i).proc - inst.deadline(i));
  }
  if (preemptive_lmax_feasible(inst, lo)) return lo;
  double hi = lo + plain.total_work() + plain.task(plain.n() - 1).release -
              plain.task(0).release + plain.pmax();
  if (!preemptive_lmax_feasible(inst, hi)) {
    throw std::logic_error("preemptive_optimal_lmax: upper bound infeasible (bug)");
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    (preemptive_lmax_feasible(inst, mid) ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace flowsched
