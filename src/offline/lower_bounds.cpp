#include "offline/lower_bounds.hpp"

#include <algorithm>
#include <vector>

namespace flowsched {
namespace {

// Max over release windows of W/machines - (t2 - t1) for a release-sorted
// list of (release, proc) pairs.
double window_bound(const std::vector<std::pair<double, double>>& tasks,
                    int machines) {
  const std::size_t n = tasks.size();
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + tasks[i].second;

  double best = 0.0;
  for (std::size_t i1 = 0; i1 < n; ++i1) {
    for (std::size_t i2 = i1; i2 < n; ++i2) {
      const double work = prefix[i2 + 1] - prefix[i1];
      const double span = tasks[i2].first - tasks[i1].first;
      best = std::max(best, work / machines - span);
    }
  }
  return best;
}

}  // namespace

double lb_pmax(const Instance& inst) { return inst.pmax(); }

double lb_volume(const Instance& inst) {
  std::vector<std::pair<double, double>> tasks;
  tasks.reserve(static_cast<std::size_t>(inst.n()));
  for (const Task& t : inst.tasks()) tasks.emplace_back(t.release, t.proc);
  return window_bound(tasks, inst.m());
}

double lb_volume_restricted(const Instance& inst) {
  double best = 0.0;
  for (int a = 0; a < inst.m(); ++a) {
    for (int b = a; b < inst.m(); ++b) {
      std::vector<std::pair<double, double>> tasks;
      for (const Task& t : inst.tasks()) {
        if (t.eligible.min() >= a && t.eligible.max() <= b) {
          tasks.emplace_back(t.release, t.proc);
        }
      }
      if (tasks.empty()) continue;
      best = std::max(best, window_bound(tasks, b - a + 1));
    }
  }
  return best;
}

double opt_lower_bound(const Instance& inst) {
  return std::max(lb_pmax(inst), lb_volume_restricted(inst));
}

}  // namespace flowsched
