#include "offline/unit_optimal.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "offline/matching.hpp"

namespace flowsched {
namespace {

void check_unit_integer(const Instance& inst) {
  for (const Task& t : inst.tasks()) {
    if (t.proc != 1.0) {
      throw std::invalid_argument("unit_optimal: non-unit processing time");
    }
    if (t.release != std::floor(t.release)) {
      throw std::invalid_argument("unit_optimal: non-integer release time");
    }
  }
}

}  // namespace

bool unit_fmax_feasible(const Instance& inst, int F, Schedule* out) {
  check_unit_integer(inst);
  if (F < 1) return inst.n() == 0;

  // Right-side nodes: (slot, machine) pairs actually reachable by a task.
  std::map<std::pair<long long, int>, int> slot_id;
  std::vector<std::pair<long long, int>> slot_of;
  std::vector<std::vector<int>> task_slots(static_cast<std::size_t>(inst.n()));

  for (int i = 0; i < inst.n(); ++i) {
    const Task& t = inst.task(i);
    const auto r = static_cast<long long>(t.release);
    for (long long slot = r; slot < r + F; ++slot) {
      for (int j : t.eligible.machines()) {
        const auto key = std::make_pair(slot, j);
        auto [it, inserted] = slot_id.try_emplace(key, static_cast<int>(slot_of.size()));
        if (inserted) slot_of.push_back(key);
        task_slots[static_cast<std::size_t>(i)].push_back(it->second);
      }
    }
  }

  BipartiteMatching matching(inst.n(), static_cast<int>(slot_of.size()));
  for (int i = 0; i < inst.n(); ++i) {
    for (int s : task_slots[static_cast<std::size_t>(i)]) matching.add_edge(i, s);
  }
  if (matching.solve() != inst.n()) return false;

  if (out != nullptr) {
    Schedule sched(inst);
    for (int i = 0; i < inst.n(); ++i) {
      const auto& [slot, machine] = slot_of[static_cast<std::size_t>(matching.match_of(i))];
      sched.assign(i, machine, static_cast<double>(slot));
    }
    *out = std::move(sched);
  }
  return true;
}

int unit_optimal_fmax(const Instance& inst) {
  check_unit_integer(inst);
  if (inst.n() == 0) return 0;
  int lo = 1;
  int hi = inst.n();  // F = n is always feasible (greedy earliest slot).
  if (!unit_fmax_feasible(inst, hi)) {
    throw std::logic_error("unit_optimal_fmax: F = n infeasible (bug)");
  }
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (unit_fmax_feasible(inst, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Schedule unit_optimal_schedule(const Instance& inst) {
  Schedule sched(inst);
  if (inst.n() == 0) return sched;
  const int opt = unit_optimal_fmax(inst);
  if (!unit_fmax_feasible(inst, opt, &sched)) {
    throw std::logic_error("unit_optimal_schedule: optimum infeasible (bug)");
  }
  return sched;
}

}  // namespace flowsched
