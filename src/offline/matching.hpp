// Hopcroft-Karp maximum bipartite matching.
//
// Substrate for the polynomial offline optimum of P|r_i, p_i=1, M_i|Fmax
// (offline/unit_optimal.hpp): feasibility of a flow-time bound F reduces to
// perfectly matching tasks to (time slot, machine) pairs.
#pragma once

#include <vector>

namespace flowsched {

class BipartiteMatching {
 public:
  /// `left` tasks-side nodes, `right` slot-side nodes.
  BipartiteMatching(int left, int right);

  void add_edge(int l, int r);

  /// Size of a maximum matching (Hopcroft-Karp, O(E sqrt(V))).
  int solve();

  /// After solve(): right partner of left node l, or -1.
  int match_of(int l) const;

 private:
  bool bfs();
  bool dfs(int l);

  int left_;
  int right_;
  std::vector<std::vector<int>> adj_;
  std::vector<int> match_l_;
  std::vector<int> match_r_;
  std::vector<int> dist_;
};

}  // namespace flowsched
