#include "offline/bruteforce.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace flowsched {
namespace {

struct SearchState {
  const Instance* inst;
  std::vector<double> machine_free;   // completion frontier per machine
  std::vector<int> chosen;            // machine per task (prefix)
  double current_fmax = 0.0;
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> best_chosen;
};

// Tasks are release-sorted; assigning in index order and starting each task
// at max(release, frontier) is exactly "release order per machine", which is
// optimal for the given assignment.
void search(SearchState& s, int i) {
  if (s.current_fmax >= s.best) return;  // bound
  if (i == s.inst->n()) {
    s.best = s.current_fmax;
    s.best_chosen = s.chosen;
    return;
  }
  const Task& t = s.inst->task(i);
  // Heuristic order: try lighter machines first so good incumbents appear
  // early and pruning bites.
  std::vector<int> order = t.eligible.machines();
  std::sort(order.begin(), order.end(), [&s](int a, int b) {
    return s.machine_free[static_cast<std::size_t>(a)] <
           s.machine_free[static_cast<std::size_t>(b)];
  });
  for (int j : order) {
    const double start = std::max(t.release, s.machine_free[static_cast<std::size_t>(j)]);
    const double completion = start + t.proc;
    const double flow = completion - t.release;
    const double saved_free = s.machine_free[static_cast<std::size_t>(j)];
    const double saved_fmax = s.current_fmax;

    s.machine_free[static_cast<std::size_t>(j)] = completion;
    s.current_fmax = std::max(s.current_fmax, flow);
    s.chosen[static_cast<std::size_t>(i)] = j;
    search(s, i + 1);
    s.machine_free[static_cast<std::size_t>(j)] = saved_free;
    s.current_fmax = saved_fmax;
  }
}

SearchState run(const Instance& inst, int max_n) {
  if (inst.n() > max_n) {
    throw std::invalid_argument("brute_force_opt: instance too large (n > max_n)");
  }
  SearchState s;
  s.inst = &inst;
  s.machine_free.assign(static_cast<std::size_t>(inst.m()), 0.0);
  s.chosen.assign(static_cast<std::size_t>(inst.n()), -1);
  search(s, 0);
  return s;
}

}  // namespace

double brute_force_opt_fmax(const Instance& inst, int max_n) {
  if (inst.n() == 0) return 0.0;
  return run(inst, max_n).best;
}

Schedule brute_force_opt_schedule(const Instance& inst, int max_n) {
  Schedule sched(inst);
  if (inst.n() == 0) return sched;
  const SearchState s = run(inst, max_n);
  // Replay the best assignment to recover start times.
  std::vector<double> machine_free(static_cast<std::size_t>(inst.m()), 0.0);
  for (int i = 0; i < inst.n(); ++i) {
    const int j = s.best_chosen[static_cast<std::size_t>(i)];
    const double start =
        std::max(inst.task(i).release, machine_free[static_cast<std::size_t>(j)]);
    machine_free[static_cast<std::size_t>(j)] = start + inst.task(i).proc;
    sched.assign(i, j, start);
  }
  return sched;
}

}  // namespace flowsched
