#include "offline/mincost_matching.hpp"

#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

namespace flowsched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Minimal min-cost max-flow with unit capacities: successive shortest
// paths, Dijkstra on reduced costs (valid because original costs are
// non-negative and potentials keep them so after each augmentation).
class UnitMcmf {
 public:
  explicit UnitMcmf(int nodes)
      : adj_(static_cast<std::size_t>(nodes)), potential_(adj_.size(), 0.0) {}

  /// Returns the index of the forward edge in `from`'s adjacency.
  int add_edge(int from, int to, double cost) {
    adj_[static_cast<std::size_t>(from)].push_back(
        {to, 1, cost, static_cast<int>(adj_[static_cast<std::size_t>(to)].size())});
    adj_[static_cast<std::size_t>(to)].push_back(
        {from, 0, -cost,
         static_cast<int>(adj_[static_cast<std::size_t>(from)].size()) - 1});
    return static_cast<int>(adj_[static_cast<std::size_t>(from)].size()) - 1;
  }

  /// Sends up to `want` units; returns (sent, cost).
  std::pair<int, double> run(int s, int t, int want) {
    int sent = 0;
    double total = 0;
    while (sent < want) {
      // Dijkstra on reduced costs.
      const std::size_t n = adj_.size();
      std::vector<double> dist(n, kInf);
      std::vector<std::pair<int, int>> parent(n, {-1, -1});  // (node, edge idx)
      using Item = std::pair<double, int>;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
      dist[static_cast<std::size_t>(s)] = 0;
      heap.emplace(0.0, s);
      while (!heap.empty()) {
        const auto [d, v] = heap.top();
        heap.pop();
        if (d > dist[static_cast<std::size_t>(v)] + 1e-12) continue;
        for (std::size_t e = 0; e < adj_[static_cast<std::size_t>(v)].size(); ++e) {
          const Edge& edge = adj_[static_cast<std::size_t>(v)][e];
          if (edge.cap <= 0) continue;
          const double reduced = d + edge.cost +
                                 potential_[static_cast<std::size_t>(v)] -
                                 potential_[static_cast<std::size_t>(edge.to)];
          if (reduced + 1e-12 < dist[static_cast<std::size_t>(edge.to)]) {
            dist[static_cast<std::size_t>(edge.to)] = reduced;
            parent[static_cast<std::size_t>(edge.to)] = {v, static_cast<int>(e)};
            heap.emplace(reduced, edge.to);
          }
        }
      }
      if (dist[static_cast<std::size_t>(t)] == kInf) break;  // no more paths
      for (std::size_t v = 0; v < n; ++v) {
        if (dist[v] < kInf) potential_[v] += dist[v];
      }
      // Augment one unit along the path.
      for (int v = t; v != s;) {
        const auto [pv, pe] = parent[static_cast<std::size_t>(v)];
        Edge& edge = adj_[static_cast<std::size_t>(pv)][static_cast<std::size_t>(pe)];
        edge.cap -= 1;
        adj_[static_cast<std::size_t>(v)][static_cast<std::size_t>(edge.rev)].cap += 1;
        total += edge.cost;
        v = pv;
      }
      ++sent;
    }
    return {sent, total};
  }

  /// After run(): whether the forward edge (node, index) carries flow.
  bool used(int node, int index) const {
    return adj_[static_cast<std::size_t>(node)][static_cast<std::size_t>(index)].cap == 0;
  }

 private:
  struct Edge {
    int to;
    int cap;
    double cost;
    int rev;
  };
  std::vector<std::vector<Edge>> adj_;
  std::vector<double> potential_;
};

}  // namespace

MinCostMatching::MinCostMatching(int left, int right)
    : left_(left), right_(right), adj_(static_cast<std::size_t>(left)) {
  if (left < 0 || right < 0) {
    throw std::invalid_argument("MinCostMatching: negative side size");
  }
}

void MinCostMatching::add_edge(int l, int r, double cost) {
  if (cost < 0) throw std::invalid_argument("MinCostMatching: negative cost");
  if (r < 0 || r >= right_) throw std::invalid_argument("MinCostMatching: bad right node");
  adj_.at(static_cast<std::size_t>(l)).push_back(Edge{r, cost});
}

MinCostMatching::Result MinCostMatching::solve() {
  const int source = left_ + right_;
  const int sink = source + 1;
  UnitMcmf flow(sink + 1);
  // Handle of each admissible pair's forward edge, for match recovery.
  std::vector<std::vector<std::pair<int, int>>> handles(
      static_cast<std::size_t>(left_));  // per l: (edge index on node l, r)

  for (int l = 0; l < left_; ++l) flow.add_edge(source, l, 0.0);
  for (int l = 0; l < left_; ++l) {
    for (const Edge& e : adj_[static_cast<std::size_t>(l)]) {
      const int idx = flow.add_edge(l, left_ + e.to, e.cost);
      handles[static_cast<std::size_t>(l)].emplace_back(idx, e.to);
    }
  }
  for (int r = 0; r < right_; ++r) flow.add_edge(left_ + r, sink, 0.0);

  const auto [sent, cost] = flow.run(source, sink, left_);

  Result result;
  result.feasible = sent == left_;
  result.total_cost = cost;
  result.match.assign(static_cast<std::size_t>(left_), -1);
  if (result.feasible) {
    for (int l = 0; l < left_; ++l) {
      for (const auto& [idx, r] : handles[static_cast<std::size_t>(l)]) {
        if (flow.used(l, idx)) {
          result.match[static_cast<std::size_t>(l)] = r;
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace flowsched
