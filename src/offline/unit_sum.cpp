#include "offline/unit_sum.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "offline/mincost_matching.hpp"

namespace flowsched {
namespace {

// Solves the assignment problem with per-(task, slot) costs supplied by
// `cost_of(task_index, completion_time)`. Slots range over
// [r_i, r_i + n - 1] per task: in some optimal schedule every task starts
// within n slots of its release — if task i started later, the n slots
// from r_i on its machine would contain a free one (only n-1 other tasks
// exist) and moving i there can only lower a completion-monotone cost.
template <typename CostFn>
double solve_assignment(const Instance& inst, CostFn cost_of, Schedule* out) {
  const int n = inst.n();
  if (n == 0) {
    if (out != nullptr) *out = Schedule(inst);
    return 0.0;
  }
  for (const Task& t : inst.tasks()) {
    if (t.proc != 1.0) {
      throw std::invalid_argument("unit_sum: non-unit processing time");
    }
    if (t.release != std::floor(t.release)) {
      throw std::invalid_argument("unit_sum: non-integer release");
    }
  }

  std::map<std::pair<long long, int>, int> slot_id;
  std::vector<std::pair<long long, int>> slot_of;
  MinCostMatching matching(n, n * inst.m() * (n + 1));  // generous bound
  for (int i = 0; i < n; ++i) {
    const Task& t = inst.task(i);
    const auto r = static_cast<long long>(t.release);
    const auto last = r + n - 1;
    for (long long slot = r; slot <= last; ++slot) {
      for (int j : t.eligible.machines()) {
        const auto key = std::make_pair(slot, j);
        auto [it, inserted] =
            slot_id.try_emplace(key, static_cast<int>(slot_of.size()));
        if (inserted) slot_of.push_back(key);
        matching.add_edge(i, it->second,
                          cost_of(i, static_cast<double>(slot) + 1.0));
      }
    }
  }

  const auto result = matching.solve();
  if (!result.feasible) {
    throw std::logic_error("unit_sum: assignment infeasible (bug: window too small)");
  }
  if (out != nullptr) {
    Schedule sched(inst);
    for (int i = 0; i < n; ++i) {
      const auto& [slot, machine] =
          slot_of[static_cast<std::size_t>(result.match[static_cast<std::size_t>(i)])];
      sched.assign(i, machine, static_cast<double>(slot));
    }
    *out = std::move(sched);
  }
  return result.total_cost;
}

}  // namespace

double unit_min_weighted_tardiness(const DeadlineInstance& inst,
                                   const std::vector<double>& weights,
                                   Schedule* out) {
  const Instance& plain = inst.instance();
  if (static_cast<int>(weights.size()) != plain.n()) {
    throw std::invalid_argument("unit_min_weighted_tardiness: weights size");
  }
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("unit_min_weighted_tardiness: negative weight");
  }
  return solve_assignment(
      plain,
      [&inst, &weights](int i, double completion) {
        return weights[static_cast<std::size_t>(i)] *
               std::max(0.0, completion - inst.deadline(i));
      },
      out);
}

double unit_min_total_flow(const Instance& inst, Schedule* out) {
  return solve_assignment(
      inst,
      [&inst](int i, double completion) {
        return completion - inst.task(i).release;
      },
      out);
}

}  // namespace flowsched
