// Min-cost bipartite perfect matching (successive shortest augmenting
// paths with Johnson potentials).
//
// Substrate for the sum-objective oracles of offline/unit_sum.hpp: the
// paper derives polynomiality of P|r_i, p_i = 1, M_i|Fmax from Brucker et
// al.'s result on P|r_i, p_i = 1, M_i|sum w_i T_i, and the classical
// algorithm behind that result is exactly an assignment problem — tasks
// matched to (time slot, machine) pairs with per-pair costs.
//
// Left nodes must all be matchable (the solver reports infeasibility
// otherwise). Costs must be non-negative (the reduced-cost Dijkstra relies
// on it; the callers' tardiness/flow costs are).
#pragma once

#include <vector>

namespace flowsched {

class MinCostMatching {
 public:
  MinCostMatching(int left, int right);

  /// Adds an admissible pair with the given non-negative cost.
  void add_edge(int l, int r, double cost);

  struct Result {
    bool feasible = false;   ///< Every left node matched.
    double total_cost = 0;
    std::vector<int> match;  ///< match[l] = right partner (or -1).
  };

  /// Minimum-cost perfect matching of the left side.
  Result solve();

 private:
  struct Edge {
    int to;
    double cost;
  };

  int left_;
  int right_;
  std::vector<std::vector<Edge>> adj_;
};

}  // namespace flowsched
