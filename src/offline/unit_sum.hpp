// Exact SUM objectives for unit tasks with processing sets.
//
// The paper derives the polynomiality of P|r_i, p_i=1, M_i|Fmax from
// Brucker, Jurisch & Krämer's result that P|r_i, p_i=1, M_i|sum w_i T_i is
// polynomial; the algorithm is an assignment problem — match each task to
// a (time slot, machine) pair, paying that pair's contribution to the
// objective. This module implements that route directly, giving
//
//   * unit_min_weighted_tardiness — min sum w_i max(0, C_i - d_i);
//   * unit_min_total_flow         — min sum (C_i - r_i), i.e. the exact
//     minimum mean flow time, the complement of the paper's max-flow
//     objective (and a reference point for EFT's mean flow in benches).
//
// Requires unit tasks with integer releases (and deadlines).
#pragma once

#include <vector>

#include "model/instance.hpp"
#include "model/schedule.hpp"
#include "offline/lmax.hpp"

namespace flowsched {

/// Minimum total weighted tardiness; weights must be non-negative and
/// aligned with the DeadlineInstance's (release-sorted) task order. If
/// `out` is non-null it receives an optimal schedule.
double unit_min_weighted_tardiness(const DeadlineInstance& inst,
                                   const std::vector<double>& weights,
                                   Schedule* out = nullptr);

/// Minimum total flow time sum_i (C_i - r_i).
double unit_min_total_flow(const Instance& inst, Schedule* out = nullptr);

}  // namespace flowsched
