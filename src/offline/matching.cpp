#include "offline/matching.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace flowsched {
namespace {
constexpr int kInf = std::numeric_limits<int>::max();
}

BipartiteMatching::BipartiteMatching(int left, int right)
    : left_(left),
      right_(right),
      adj_(static_cast<std::size_t>(left)),
      match_l_(static_cast<std::size_t>(left), -1),
      match_r_(static_cast<std::size_t>(right), -1),
      dist_(static_cast<std::size_t>(left), 0) {
  if (left < 0 || right < 0) throw std::invalid_argument("BipartiteMatching: negative size");
}

void BipartiteMatching::add_edge(int l, int r) {
  adj_.at(static_cast<std::size_t>(l)).push_back(r);
  if (r < 0 || r >= right_) throw std::invalid_argument("BipartiteMatching: bad right node");
}

bool BipartiteMatching::bfs() {
  std::queue<int> q;
  for (int l = 0; l < left_; ++l) {
    if (match_l_[static_cast<std::size_t>(l)] < 0) {
      dist_[static_cast<std::size_t>(l)] = 0;
      q.push(l);
    } else {
      dist_[static_cast<std::size_t>(l)] = kInf;
    }
  }
  bool found_augmenting = false;
  while (!q.empty()) {
    const int l = q.front();
    q.pop();
    for (int r : adj_[static_cast<std::size_t>(l)]) {
      const int next = match_r_[static_cast<std::size_t>(r)];
      if (next < 0) {
        found_augmenting = true;
      } else if (dist_[static_cast<std::size_t>(next)] == kInf) {
        dist_[static_cast<std::size_t>(next)] = dist_[static_cast<std::size_t>(l)] + 1;
        q.push(next);
      }
    }
  }
  return found_augmenting;
}

bool BipartiteMatching::dfs(int l) {
  for (int r : adj_[static_cast<std::size_t>(l)]) {
    const int next = match_r_[static_cast<std::size_t>(r)];
    if (next < 0 || (dist_[static_cast<std::size_t>(next)] ==
                         dist_[static_cast<std::size_t>(l)] + 1 &&
                     dfs(next))) {
      match_l_[static_cast<std::size_t>(l)] = r;
      match_r_[static_cast<std::size_t>(r)] = l;
      return true;
    }
  }
  dist_[static_cast<std::size_t>(l)] = kInf;
  return false;
}

int BipartiteMatching::solve() {
  int matched = 0;
  while (bfs()) {
    for (int l = 0; l < left_; ++l) {
      if (match_l_[static_cast<std::size_t>(l)] < 0 && dfs(l)) ++matched;
    }
  }
  return matched;
}

int BipartiteMatching::match_of(int l) const {
  return match_l_.at(static_cast<std::size_t>(l));
}

}  // namespace flowsched
