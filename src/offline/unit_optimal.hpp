// Exact offline optimum for unit tasks: P | r_i, p_i = 1, M_i | Fmax.
//
// The paper notes (Section 6, via Brucker et al.) that this problem is
// polynomial. We solve it directly: with unit tasks and integer releases
// there is an optimal schedule with integer start times (exchange argument),
// so a flow bound F is feasible iff the tasks can be perfectly matched to
// (integer slot, eligible machine) pairs with slot in [r_i, r_i + F - 1].
// Binary search on F with a Hopcroft-Karp feasibility check gives the
// optimum in O(log n) matchings.
//
// This is the OPT oracle the competitive-ratio benches divide by (all of
// the paper's adversary constructions use unit tasks except Theorem 10,
// whose optimum the paper derives analytically).
#pragma once

#include "model/instance.hpp"
#include "model/schedule.hpp"

namespace flowsched {

/// True iff some schedule achieves Fmax <= F. Requires unit tasks and
/// integer release times (throws std::invalid_argument otherwise).
/// If `out` is non-null and the bound is feasible, *out receives a schedule
/// realizing it.
bool unit_fmax_feasible(const Instance& inst, int F, Schedule* out = nullptr);

/// Optimal Fmax. Requires unit tasks and integer releases.
int unit_optimal_fmax(const Instance& inst);

/// Optimal schedule realizing unit_optimal_fmax.
Schedule unit_optimal_schedule(const Instance& inst);

}  // namespace flowsched
