// Lower bounds on the offline optimum Fmax.
//
// Competitive-ratio measurements divide an online algorithm's Fmax by OPT;
// when the exact optimum is unavailable (arbitrary processing times), these
// certified lower bounds give a conservative (over-)estimate of the ratio's
// denominator, i.e. an *upper* bound on how well the algorithm could be
// doing — measured_ratio = alg / LB >= alg / OPT.
//
// Bounds implemented:
//   (3)  F* >= pmax                              (a task must be processed);
//   (4)  F* >= W_r / m in volume form: tasks released within [t1, t2] carry
//        work W, and at most m*(t2 - t1 + F*) of it fits by t2 + F*, so
//        F* >= W/m - (t2 - t1);
//   restricted variant: tasks whose processing set is contained in a window
//        of machines S can only use |S| machines, giving
//        F* >= W_S/|S| - (t2 - t1).
#pragma once

#include "model/instance.hpp"

namespace flowsched {

/// Max processing time bound (3).
double lb_pmax(const Instance& inst);

/// Volume bound (4) maximized over all release-time windows. O(n^2) after
/// sorting; intended for the moderate instance sizes of the ratio benches.
double lb_volume(const Instance& inst);

/// Volume bound restricted to contiguous machine windows [a, b]: only tasks
/// with M_i fully inside the window count, and only |b - a + 1| machines
/// serve them. O(m^2 n^2). Subsumes lb_volume (window = all machines).
double lb_volume_restricted(const Instance& inst);

/// Best available certified lower bound (max of the above).
double opt_lower_bound(const Instance& inst);

}  // namespace flowsched
