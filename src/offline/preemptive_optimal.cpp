#include "offline/preemptive_optimal.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "lp/maxflow.hpp"

namespace flowsched {

bool preemptive_deadline_feasible(const Instance& inst,
                                  const std::vector<double>& deadlines) {
  const int n = inst.n();
  const int m = inst.m();
  if (static_cast<int>(deadlines.size()) != n) {
    throw std::invalid_argument("preemptive_deadline_feasible: size mismatch");
  }
  if (n == 0) return true;

  // Event points: releases and deadlines.
  std::vector<double> points;
  points.reserve(2 * static_cast<std::size_t>(n));
  double total_work = 0;
  for (int i = 0; i < n; ++i) {
    const Task& t = inst.task(i);
    const double d = deadlines[static_cast<std::size_t>(i)];
    points.push_back(t.release);
    points.push_back(d);
    total_work += t.proc;
    if (t.proc > d - t.release + 1e-12) return false;  // cannot fit at all
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](double a, double b) { return b - a < 1e-12; }),
               points.end());
  const int q = static_cast<int>(points.size()) - 1;  // intervals

  // Node layout: source | tasks | (task, interval) | (interval, machine) |
  // sink. (task, interval) nodes exist only where the task's window covers
  // the interval; (interval, machine) nodes are dense (q * m is small).
  std::vector<std::vector<int>> ti_node(static_cast<std::size_t>(n),
                                        std::vector<int>(static_cast<std::size_t>(q), -1));
  int next_node = 1 + n;
  for (int i = 0; i < n; ++i) {
    const double r = inst.task(i).release;
    const double d = deadlines[static_cast<std::size_t>(i)];
    for (int v = 0; v < q; ++v) {
      if (points[static_cast<std::size_t>(v)] >= r - 1e-12 &&
          points[static_cast<std::size_t>(v) + 1] <= d + 1e-12) {
        ti_node[static_cast<std::size_t>(i)][static_cast<std::size_t>(v)] = next_node++;
      }
    }
  }
  const int im_base = next_node;
  next_node += q * m;
  const int sink = next_node++;
  const int source = 0;

  MaxFlow flow(next_node);
  for (int i = 0; i < n; ++i) {
    flow.add_edge(source, 1 + i, inst.task(i).proc);
  }
  for (int v = 0; v < q; ++v) {
    const double len = points[static_cast<std::size_t>(v) + 1] -
                       points[static_cast<std::size_t>(v)];
    for (int j = 0; j < m; ++j) {
      flow.add_edge(im_base + v * m + j, sink, len);
    }
    for (int i = 0; i < n; ++i) {
      const int node = ti_node[static_cast<std::size_t>(i)][static_cast<std::size_t>(v)];
      if (node < 0) continue;
      flow.add_edge(1 + i, node, len);
      for (int j : inst.task(i).eligible.machines()) {
        flow.add_edge(node, im_base + v * m + j, len);
      }
    }
  }
  return flow.solve(source, sink) >= total_work - 1e-7;
}

bool preemptive_fmax_feasible(const Instance& inst, double F) {
  if (inst.n() == 0) return true;
  if (!(F > 0)) return false;
  std::vector<double> deadlines;
  deadlines.reserve(static_cast<std::size_t>(inst.n()));
  for (const Task& t : inst.tasks()) deadlines.push_back(t.release + F);
  return preemptive_deadline_feasible(inst, deadlines);
}

double preemptive_optimal_fmax(const Instance& inst, double tol) {
  if (inst.n() == 0) return 0.0;
  double lo = inst.pmax();  // F >= pmax always
  if (preemptive_fmax_feasible(inst, lo)) return lo;
  // Upper bound: serialize everything after the last release.
  double hi = inst.total_work() +
              inst.task(inst.n() - 1).release - inst.task(0).release +
              inst.pmax();
  if (!preemptive_fmax_feasible(inst, hi)) {
    throw std::logic_error("preemptive_optimal_fmax: upper bound infeasible (bug)");
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    (preemptive_fmax_feasible(inst, mid) ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace flowsched
