// Maximum lateness (Lmax) oracles with processing sets.
//
// Section 2 of the paper recalls that Fmax is the special case of Lmax
// where every deadline equals the release time (d_i = r_i): lateness
// L_i = C_i - d_i then equals the flow time. This module provides the
// general form — per-task deadlines — for both task models we have exact
// machinery for:
//
//   * unit tasks, integer releases/deadlines: binary search on L with a
//     Hopcroft-Karp matching over (slot, machine) pairs in
//     [r_i, d_i + L - 1];
//   * arbitrary tasks with preemption: binary search on L over the
//     interval/flow feasibility network of offline/preemptive_optimal.hpp.
//
// A DeadlineTask couples a Task with its deadline; Fmax oracles are
// recovered by setting deadline = release (see tests).
#pragma once

#include <vector>

#include "model/instance.hpp"

namespace flowsched {

struct DeadlineTask {
  Task task;
  double deadline = 0.0;  ///< d_i >= r_i.
};

/// Validated bundle of deadline tasks over m machines.
class DeadlineInstance {
 public:
  DeadlineInstance(int m, std::vector<DeadlineTask> tasks);

  int m() const { return m_; }
  int n() const { return static_cast<int>(tasks_.size()); }
  const DeadlineTask& at(int i) const { return tasks_.at(static_cast<std::size_t>(i)); }

  /// The underlying scheduling instance (release-sorted; indices align
  /// with deadline(i)).
  const Instance& instance() const { return instance_; }
  double deadline(int i) const { return deadlines_.at(static_cast<std::size_t>(i)); }

  /// Fmax view: every deadline equals the release.
  static DeadlineInstance fmax_view(const Instance& inst);

 private:
  int m_;
  std::vector<DeadlineTask> tasks_;
  Instance instance_;
  std::vector<double> deadlines_;  ///< Aligned with instance_ order.
};

/// True iff some non-preemptive schedule has max lateness <= L. Requires
/// unit tasks and integer releases/deadlines.
bool unit_lmax_feasible(const DeadlineInstance& inst, int L);

/// Minimal integer max lateness for unit tasks. May be negative (every
/// task can finish before its deadline).
int unit_optimal_lmax(const DeadlineInstance& inst);

/// True iff some preemptive schedule has max lateness <= L (flow network
/// feasibility; arbitrary processing times).
bool preemptive_lmax_feasible(const DeadlineInstance& inst, double L);

/// Minimal preemptive max lateness, to absolute tolerance `tol`.
double preemptive_optimal_lmax(const DeadlineInstance& inst, double tol = 1e-7);

}  // namespace flowsched
