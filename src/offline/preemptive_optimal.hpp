// Exact preemptive offline optimum for P | r_i, pmtn, M_i | Fmax.
//
// The paper's Table 1 cites Legrand et al. / Lawler & Labetoulle: with
// preemption the problem is polynomial, because testing a flow bound F
// (i.e. deadlines d_i = r_i + F) is a network-flow feasibility question.
// Partition time at the event points {r_i} U {d_i} into intervals
// I_1 < ... < I_q. A deadline-feasible preemptive schedule exists iff a
// flow saturating every task's processing volume exists in
//
//   source --p_i--> task_i --|I|--> (task_i, I)     for I within [r_i, d_i]
//   (task_i, I) ----> (I, machine j), j in M_i
//   (I, machine j) --|I|--> sink
//
// The (task, I) caps forbid a task from running on two machines at once;
// the (I, j) caps bound machine capacity. Sufficiency of these conditions
// follows from preemptive open-shop scheduling (Gonzalez & Sahni): within
// each interval a per-(task, machine) time allocation with row and column
// sums <= |I| is realizable.
//
// The optimum F* is found by bisection. For unit tasks with integer
// releases, F* is compared against the non-preemptive matching optimum in
// the tests (preemptive OPT <= non-preemptive OPT always).
#pragma once

#include "model/instance.hpp"

namespace flowsched {

/// Core feasibility test: is there a preemptive schedule completing every
/// task i by deadlines[i] (aligned with the instance's task order)?
/// Exposed for the Lmax oracles (offline/lmax.hpp).
bool preemptive_deadline_feasible(const Instance& inst,
                                  const std::vector<double>& deadlines);

/// True iff a preemptive schedule with Fmax <= F exists.
bool preemptive_fmax_feasible(const Instance& inst, double F);

/// The preemptive optimum, up to absolute tolerance `tol` (bisection).
double preemptive_optimal_fmax(const Instance& inst, double tol = 1e-7);

}  // namespace flowsched
