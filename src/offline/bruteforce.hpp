// Exhaustive offline optimum for small arbitrary instances.
//
// Test oracle: enumerates machine assignments by branch-and-bound. For a
// fixed assignment, processing each machine's tasks in release order is
// optimal for Fmax on a single machine (exchange argument, as in the proof
// of Theorem 2 generalized to arbitrary processing times), so the search
// space is m^n assignments, pruned by the incumbent.
//
// Intended for n <= ~12; throws std::invalid_argument beyond `max_n` to
// avoid accidental exponential blowups in tests.
#pragma once

#include "model/instance.hpp"
#include "model/schedule.hpp"

namespace flowsched {

/// Exact optimal Fmax by branch-and-bound.
double brute_force_opt_fmax(const Instance& inst, int max_n = 14);

/// A schedule realizing brute_force_opt_fmax.
Schedule brute_force_opt_schedule(const Instance& inst, int max_n = 14);

}  // namespace flowsched
