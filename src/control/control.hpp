// Closed-loop adaptive replication control (docs/control.md).
//
// A ReplicationController observes a running cluster — the per-machine
// backlog profile w_t(j), the availability set from the FaultPlan, and an
// arrival-rate estimate — at a fixed dyadic cadence and re-tunes the
// replication factor k and the layout (overlapping ring vs disjoint
// blocks) online. The in-the-loop oracle is the paper's LP (15): a
// candidate layout's score is the maximum sustainable arrival rate of its
// replica sets *degraded to the currently-up machines*, so the controller
// reacts to crashes with the same machinery Section 7.2 uses to compare
// static layouts.
//
// Contracts, all audited by InvariantAuditor::check_control_run:
//
//   [control-determinism]    decide() is a pure function of (controller
//                            state, observation, config): replaying the
//                            logged observations through a fresh controller
//                            reproduces every logged decision bitwise —
//                            byte-identical at any thread count.
//   [control-movement-bound] re-tuning is incremental: a layout change
//                            migrates at most max_move owners per decision
//                            epoch, k moves by at most 1 per switch, and at
//                            most one migration is in flight.
//   [control-setup-accounting] movement is never free: every moved owner
//                            charges the non-clairvoyant setup cost on its
//                            next request, each exactly once, and the
//                            charges reconcile with the decision log.
//
// Graceful degradation: hysteresis (a candidate must beat the incumbent's
// headroom by a factor) and a cooldown (epochs held after a migration
// completes) prevent flapping; an LP failure or oracle pivot-budget
// overrun falls back toward the last known-good layout instead of acting
// on a bad score.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/replication.hpp"

namespace flowsched {

/// One point in the controller's decision space: a replication strategy
/// (the layout) plus the replication factor k.
struct LayoutSpec {
  ReplicationStrategy strategy = ReplicationStrategy::kOverlapping;
  int k = 3;

  friend bool operator==(const LayoutSpec& a, const LayoutSpec& b) {
    return a.strategy == b.strategy && a.k == b.k;
  }
  /// "overlapping/k=3" — stable rendering used by the bitwise log replay.
  std::string str() const;
};

/// Controller tuning. All defaults are dyadic so every derived time and
/// charge is exact double arithmetic.
struct ControlConfig {
  bool enabled = true;
  double period = 8.0;      ///< Decision cadence (dyadic model time).
  double hysteresis = 1.25; ///< Required headroom improvement factor.
  int cooldown = 2;         ///< Epochs held after a migration completes.
  int k_min = 1;            ///< Lower bound of the k search range.
  int k_max = 0;            ///< Upper bound; 0 means m.
  int max_move = 0;         ///< Owners migrated per epoch; 0 means max(1, m/4).
  double setup_cost = 0.25; ///< Charged on each moved owner's next request.
  /// Oracle budget: a candidate whose LP solve spends more simplex pivots
  /// than this is treated as timed out (deterministically — the pivot count
  /// is a pure function of the program), triggering the fallback path.
  std::size_t lp_pivot_cap = 4096;
  /// Mean per-machine backlog above which the incumbent counts as
  /// overloaded even if its LP score still covers the arrival rate
  /// (0 disables the backlog trigger).
  double overload_backlog = 0.0;

  std::string str() const;
};

/// What the controller sees at one decision instant. Assembled by the
/// adaptive simulation from OnlineEngine::profile / MetricsCollector and
/// FaultPlan::is_up; never from wall clock or thread state.
struct ControlObservation {
  double time = 0;
  std::vector<double> backlog;    ///< Per machine: w_t(j) = max(0, C_j - t).
  std::vector<std::uint8_t> up;   ///< Per machine: available at `time`.
  double arrival_rate = 0;        ///< Released requests / elapsed time.

  std::string str() const;
};

/// One decision, fully self-describing for bitwise replay. `moved_lo` /
/// `moved_hi` is the half-open owner range migrated this epoch (empty when
/// the controller held).
struct ControlDecision {
  int epoch = 0;
  double time = 0;
  LayoutSpec from;      ///< Active layout entering the epoch.
  LayoutSpec target;    ///< Layout being migrated toward after the epoch.
  int moved_lo = 0;
  int moved_hi = 0;
  double current_score = 0;  ///< Degraded LP headroom of `from`.
  double best_score = 0;     ///< Best candidate headroom seen this epoch.
  bool switched = false;     ///< A new migration began this epoch.
  bool fallback = false;     ///< Oracle failed; reverting to last known-good.
  std::string reason;        ///< "hold"|"cooldown"|"migrate"|"switch"|"fallback".

  int moved_owners() const { return moved_hi - moved_lo; }
  std::string str() const;
};

/// \brief Append-only record of one adaptive run: every decision with the
/// observation it was made on, and every setup charge actuation produced.
/// str() is the canonical serialization the determinism audit compares.
class ControlLog {
 public:
  struct SetupCharge {
    int owner = 0;
    int epoch = 0;      ///< Decision epoch whose migration moved the owner.
    double amount = 0;
  };

  void record(const ControlObservation& obs, const ControlDecision& d);
  void record_charge(int owner, int epoch, double amount);

  const std::vector<ControlDecision>& decisions() const { return decisions_; }
  const std::vector<ControlObservation>& observations() const {
    return observations_;
  }
  const std::vector<SetupCharge>& charges() const { return charges_; }

  int switches() const;
  int fallbacks() const;
  /// Total owners migrated across all decisions.
  long long moved_total() const;
  double setup_total() const;

  std::string str() const;

 private:
  std::vector<ControlDecision> decisions_;
  std::vector<ControlObservation> observations_;
  std::vector<SetupCharge> charges_;
};

/// \brief The closed-loop controller. Feed it one ControlObservation per
/// decision epoch; it returns the decision and tracks the migration
/// frontier that actuates it incrementally.
///
/// Determinism: the controller holds no RNG and reads no clock — decide()
/// is a pure function of the constructor arguments and the observation
/// sequence, which is what makes the [control-determinism] replay possible.
/// `seed` is carried for provenance (it names the replicate that produced
/// the observations) but never drawn from.
class ReplicationController {
 public:
  ReplicationController(int m, LayoutSpec initial, ControlConfig config,
                        std::uint64_t seed = 0);

  int m() const { return m_; }
  const ControlConfig& config() const { return config_; }
  std::uint64_t seed() const { return seed_; }

  /// The layout owners at or beyond the migration frontier still use.
  const LayoutSpec& active() const { return active_; }
  /// The layout owners below the frontier already use (== active() when no
  /// migration is in flight).
  const LayoutSpec& target() const { return target_; }
  bool migrating() const { return frontier_ < m_; }

  /// Replica set serving keys owned by `owner` under the current
  /// (frontier-aware) layout.
  ProcSet eligible_for_owner(int owner) const;

  /// One decision epoch. Also advances the migration frontier by at most
  /// max_move owners and updates cooldown / last-known-good state.
  ControlDecision decide(const ControlObservation& obs);

  /// Effective bounds after defaulting (k_max = 0 -> m, max_move = 0 ->
  /// max(1, m/4)).
  int effective_k_max() const;
  int effective_max_move() const;

  /// \brief Testing backdoor: flip the layout every epoch and jump the
  /// migration frontier in one step, ignoring hysteresis, cooldown, and the
  /// movement bound. This is the planted bug the fuzzer's
  /// --inject-control-bug campaign must catch via [control-determinism] /
  /// [control-movement-bound]; never enable it outside tests.
  void set_unsafe_flap(bool v) { unsafe_flap_ = v; }

 private:
  /// LP (15) headroom of `layout` on the machines up in `obs`. Sets that
  /// degrade to empty make the layout infeasible (*feasible = false,
  /// score 0); an LP failure or pivot-cap overrun sets *oracle_failed.
  double headroom(const LayoutSpec& layout, const ControlObservation& obs,
                  bool* feasible, bool* oracle_failed) const;
  /// Advances the frontier by at most max_move owners; returns the moved
  /// range via the decision fields and closes the migration when done.
  void advance_frontier(ControlDecision* d);
  void begin_migration(const LayoutSpec& to, ControlDecision* d);

  int m_;
  ControlConfig config_;
  std::uint64_t seed_;
  LayoutSpec active_;
  LayoutSpec target_;
  LayoutSpec last_good_;
  int frontier_;       ///< Owners < frontier_ use target_; m_ = no migration.
  int cooldown_left_ = 0;
  int epoch_ = 0;
  bool unsafe_flap_ = false;
};

}  // namespace flowsched
