#include "control/control.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "lp/maxload.hpp"

namespace flowsched {
namespace {

// 17 significant digits round-trips every double, so two logs render
// byte-identically iff the underlying values are bit-identical — the
// representation the [control-determinism] replay compares.
std::string fmt(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

ReplicationStrategy flipped(ReplicationStrategy s) {
  return s == ReplicationStrategy::kOverlapping
             ? ReplicationStrategy::kDisjoint
             : ReplicationStrategy::kOverlapping;
}

}  // namespace

std::string LayoutSpec::str() const {
  return to_string(strategy) + "/k=" + std::to_string(k);
}

std::string ControlConfig::str() const {
  std::ostringstream out;
  out << "period=" << fmt(period) << " hysteresis=" << fmt(hysteresis)
      << " cooldown=" << cooldown << " k=[" << k_min << ","
      << (k_max == 0 ? std::string("m") : std::to_string(k_max))
      << "] max-move=" << max_move << " setup=" << fmt(setup_cost)
      << " pivot-cap=" << lp_pivot_cap;
  return out.str();
}

std::string ControlObservation::str() const {
  std::ostringstream out;
  out << "t=" << fmt(time) << " lambda=" << fmt(arrival_rate) << " up=";
  for (std::uint8_t u : up) out << (u ? '1' : '0');
  out << " backlog=[";
  for (std::size_t j = 0; j < backlog.size(); ++j) {
    if (j > 0) out << ",";
    out << fmt(backlog[j]);
  }
  out << "]";
  return out.str();
}

std::string ControlDecision::str() const {
  std::ostringstream out;
  out << "epoch=" << epoch << " t=" << fmt(time) << " from=" << from.str()
      << " target=" << target.str() << " moved=[" << moved_lo << ","
      << moved_hi << ") score=" << fmt(current_score) << " best="
      << fmt(best_score) << " reason=" << reason
      << (switched ? " switched" : "") << (fallback ? " fallback" : "");
  return out.str();
}

void ControlLog::record(const ControlObservation& obs,
                        const ControlDecision& d) {
  observations_.push_back(obs);
  decisions_.push_back(d);
}

void ControlLog::record_charge(int owner, int epoch, double amount) {
  charges_.push_back(SetupCharge{owner, epoch, amount});
}

int ControlLog::switches() const {
  int n = 0;
  for (const ControlDecision& d : decisions_) n += d.switched ? 1 : 0;
  return n;
}

int ControlLog::fallbacks() const {
  int n = 0;
  for (const ControlDecision& d : decisions_) n += d.fallback ? 1 : 0;
  return n;
}

long long ControlLog::moved_total() const {
  long long n = 0;
  for (const ControlDecision& d : decisions_) n += d.moved_owners();
  return n;
}

double ControlLog::setup_total() const {
  double s = 0;
  for (const SetupCharge& c : charges_) s += c.amount;
  return s;
}

std::string ControlLog::str() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    out << "decision " << decisions_[i].str() << " | obs "
        << observations_[i].str() << "\n";
  }
  for (const SetupCharge& c : charges_) {
    out << "charge owner=" << c.owner << " epoch=" << c.epoch
        << " amount=" << fmt(c.amount) << "\n";
  }
  out << "control: decisions=" << decisions_.size()
      << " switches=" << switches() << " fallbacks=" << fallbacks()
      << " moved=" << moved_total() << " setup-total=" << fmt(setup_total())
      << "\n";
  return out.str();
}

ReplicationController::ReplicationController(int m, LayoutSpec initial,
                                             ControlConfig config,
                                             std::uint64_t seed)
    : m_(m),
      config_(config),
      seed_(seed),
      active_(initial),
      target_(initial),
      last_good_(initial),
      frontier_(m) {
  if (m < 1) throw std::invalid_argument("ReplicationController: m < 1");
  if (initial.k < 1 || initial.k > m) {
    throw std::invalid_argument("ReplicationController: initial k out of [1, m]");
  }
  if (initial.strategy != ReplicationStrategy::kOverlapping &&
      initial.strategy != ReplicationStrategy::kDisjoint) {
    throw std::invalid_argument(
        "ReplicationController: layout must be overlapping or disjoint");
  }
  if (!(config.period > 0)) {
    throw std::invalid_argument("ReplicationController: period <= 0");
  }
  if (!(config.hysteresis >= 1.0)) {
    throw std::invalid_argument("ReplicationController: hysteresis < 1");
  }
  if (config.cooldown < 0 || config.max_move < 0 ||
      !(config.setup_cost >= 0)) {
    throw std::invalid_argument("ReplicationController: bad config");
  }
  if (config.k_min < 1) {
    throw std::invalid_argument("ReplicationController: k_min < 1");
  }
}

int ReplicationController::effective_k_max() const {
  const int cap = config_.k_max == 0 ? m_ : config_.k_max;
  return cap < m_ ? cap : m_;
}

int ReplicationController::effective_max_move() const {
  if (config_.max_move > 0) return config_.max_move;
  const int quarter = m_ / 4;
  return quarter > 1 ? quarter : 1;
}

ProcSet ReplicationController::eligible_for_owner(int owner) const {
  if (owner < 0 || owner >= m_) {
    throw std::invalid_argument("eligible_for_owner: owner out of range");
  }
  const LayoutSpec& spec = owner < frontier_ ? target_ : active_;
  return replica_set(spec.strategy, owner, spec.k, m_);
}

double ReplicationController::headroom(const LayoutSpec& layout,
                                       const ControlObservation& obs,
                                       bool* feasible,
                                       bool* oracle_failed) const {
  *feasible = false;
  *oracle_failed = false;
  std::vector<ProcSet> degraded;
  degraded.reserve(static_cast<std::size_t>(m_));
  for (int owner = 0; owner < m_; ++owner) {
    const ProcSet full = replica_set(layout.strategy, owner, layout.k, m_);
    std::vector<int> up_members;
    for (int j : full.machines()) {
      if (obs.up[static_cast<std::size_t>(j)]) up_members.push_back(j);
    }
    // A key range whose every replica is down cannot be served: the layout
    // is infeasible at this instant, no LP needed.
    if (up_members.empty()) return 0.0;
    degraded.emplace_back(std::move(up_members));
  }
  const std::vector<double> popularity(static_cast<std::size_t>(m_),
                                       1.0 / static_cast<double>(m_));
  try {
    MaxLoadSolver solver(std::move(degraded));
    const double lambda = solver.solve_lambda(popularity);
    if (config_.lp_pivot_cap > 0 &&
        solver.last_iterations() > config_.lp_pivot_cap) {
      *oracle_failed = true;
      return 0.0;
    }
    if (!(lambda > 0) || !std::isfinite(lambda)) {
      *oracle_failed = true;
      return 0.0;
    }
    *feasible = true;
    return lambda;
  } catch (const std::exception&) {
    *oracle_failed = true;
    return 0.0;
  }
}

void ReplicationController::advance_frontier(ControlDecision* d) {
  d->moved_lo = frontier_;
  frontier_ += effective_max_move();
  if (frontier_ > m_) frontier_ = m_;
  d->moved_hi = frontier_;
  if (frontier_ == m_) {
    active_ = target_;
    cooldown_left_ = config_.cooldown;
  }
}

void ReplicationController::begin_migration(const LayoutSpec& to,
                                            ControlDecision* d) {
  target_ = to;
  frontier_ = 0;
  d->switched = true;
  advance_frontier(d);
}

ControlDecision ReplicationController::decide(const ControlObservation& obs) {
  if (static_cast<int>(obs.backlog.size()) != m_ ||
      static_cast<int>(obs.up.size()) != m_) {
    throw std::invalid_argument("decide: observation size mismatch");
  }
  ControlDecision d;
  d.epoch = epoch_++;
  d.time = obs.time;
  d.from = active_;
  d.target = target_;

  if (unsafe_flap_) {
    // Planted bug: flip the layout every epoch and migrate everything at
    // once — no hysteresis, no cooldown, no movement bound. The audit's
    // clean replay diverges ([control-determinism]) and the per-epoch move
    // exceeds max_move ([control-movement-bound]).
    LayoutSpec flip = active_;
    flip.strategy = flipped(active_.strategy);
    target_ = flip;
    active_ = flip;
    frontier_ = m_;
    d.target = flip;
    d.switched = true;
    d.moved_lo = 0;
    d.moved_hi = m_;
    d.reason = "switch";
    return d;
  }

  if (frontier_ < m_) {
    // One migration in flight: keep moving it, nothing else happens.
    advance_frontier(&d);
    d.reason = "migrate";
    d.target = target_;
    return d;
  }

  bool cur_ok = false;
  bool cur_fail = false;
  d.current_score = headroom(active_, obs, &cur_ok, &cur_fail);
  d.best_score = d.current_score;
  if (cur_fail) {
    d.fallback = true;
    d.reason = "fallback";
    if (!(last_good_ == active_)) begin_migration(last_good_, &d);
    d.target = target_;
    return d;
  }

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    d.reason = "cooldown";
    return d;
  }

  // Candidate scan in a fixed order (lower k, raise k, flip layout) so the
  // argmax — ties kept by the earlier candidate — is deterministic.
  std::vector<LayoutSpec> candidates;
  if (active_.k - 1 >= config_.k_min) {
    candidates.push_back(LayoutSpec{active_.strategy, active_.k - 1});
  }
  if (active_.k + 1 <= effective_k_max()) {
    candidates.push_back(LayoutSpec{active_.strategy, active_.k + 1});
  }
  candidates.push_back(LayoutSpec{flipped(active_.strategy), active_.k});

  bool have_best = false;
  LayoutSpec best_cand;
  double best = 0.0;
  for (const LayoutSpec& cand : candidates) {
    bool ok = false;
    bool fail = false;
    const double s = headroom(cand, obs, &ok, &fail);
    if (fail) {
      d.fallback = true;
      d.reason = "fallback";
      if (!(last_good_ == active_)) begin_migration(last_good_, &d);
      d.target = target_;
      return d;
    }
    if (ok && (!have_best || s > best)) {
      have_best = true;
      best = s;
      best_cand = cand;
    }
  }
  if (have_best && best > d.best_score) d.best_score = best;

  double backlog_sum = 0;
  for (double b : obs.backlog) backlog_sum += b;
  const double mean_backlog = backlog_sum / static_cast<double>(m_);
  const bool overloaded =
      !cur_ok || d.current_score < obs.arrival_rate ||
      (config_.overload_backlog > 0 && mean_backlog > config_.overload_backlog);

  const bool switch_now =
      have_best &&
      ((!cur_ok && best > 0) || (overloaded && best > d.current_score) ||
       (best > d.current_score && best >= config_.hysteresis * d.current_score));
  if (switch_now) {
    begin_migration(best_cand, &d);
    d.reason = "switch";
  } else {
    d.reason = "hold";
    if (cur_ok && !overloaded) last_good_ = active_;
  }
  d.target = target_;
  return d;
}

}  // namespace flowsched
