// Adaptive cluster runs: a request stream served under a
// ReplicationController that re-tunes the layout while the run is live.
//
// A ControlCase is the fully explicit scenario — request stream (release /
// processing / key per request), the owner map (owner = key mod m), the
// initial layout, the controller config, and an optional FaultPlan — so a
// case is replayable bit-for-bit from its serialization alone, and the
// delta-debugging shrinker can minimize the stream like any instance.
//
// run_adaptive() drives the real OnlineEngine (fault path included): at
// every dyadic decision boundary the controller observes the engine profile
// w_t(j), the availability set, and the measured arrival rate, decides, and
// the migration frontier actuates the decision incrementally; every moved
// owner charges the setup cost on its next request. With `enabled = false`
// no decision is ever taken and the run is byte-identical to the plain
// static path (run_static) — the fuzzer's [diff-control] differential.
#pragma once

#include <string>
#include <vector>

#include "control/control.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "obs/observer.hpp"
#include "sched/dispatchers.hpp"

namespace flowsched {

/// One explicit adaptive scenario. Releases must be non-decreasing; keys
/// are arbitrary non-negative ids owned by machine (key mod m).
struct ControlCase {
  int m = 4;
  LayoutSpec initial;
  ControlConfig control;
  std::vector<double> release;
  std::vector<double> proc;
  std::vector<int> key;
  FaultPlan plan{1};           ///< Fault-free by default (m mismatch ok then).
  RecoveryPolicy recovery;

  int requests() const { return static_cast<int>(release.size()); }
  bool faulty() const { return !plan.fault_free(); }
};

/// Deterministic result of one adaptive (or reference static) run.
struct AdaptiveRunReport {
  int requests = 0;
  long long completed = 0;
  long long dropped = 0;
  long long parked = 0;
  long long retried = 0;
  double wasted_work = 0;
  double fmax = 0;        ///< Max flow over completed requests.
  double mean_flow = 0;   ///< Mean flow over completed requests.
  double makespan = 0;
  /// Flow of each completed request, in request order — the field the
  /// [diff-control] differential compares element-wise.
  std::vector<double> flows;

  // Controller outcome (all zero / empty on static and controller-off runs,
  // and str() then prints the exact static report — byte-identical).
  int decisions = 0;
  int switches = 0;
  int fallbacks = 0;
  double setup_total = 0;
  LayoutSpec final_layout;
  ControlLog log;

  /// Deterministic one-liner, safe to byte-compare across thread counts.
  std::string str() const;
};

/// Serves the case through `dispatcher` under the closed-loop controller.
/// With `enabled = false` the controller never runs (no decisions, no
/// setup charges) and the output equals run_static bitwise. `unsafe_flap`
/// arms the controller's planted-bug backdoor (fuzzing only). A non-null
/// observer receives the engine event stream with run brackets.
AdaptiveRunReport run_adaptive(const ControlCase& c, Dispatcher& dispatcher,
                               bool enabled = true,
                               SchedObserver* observer = nullptr,
                               bool unsafe_flap = false);

/// The reference static path: the same requests as a plain Instance
/// (eligible sets frozen to the initial layout) through run_dispatcher /
/// run_dispatcher_faulty. [diff-control] compares this against
/// run_adaptive(enabled = false).
AdaptiveRunReport run_static(const ControlCase& c, Dispatcher& dispatcher,
                             SchedObserver* observer = nullptr);

}  // namespace flowsched
