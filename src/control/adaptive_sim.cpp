#include "control/adaptive_sim.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "model/instance.hpp"
#include "sched/engine.hpp"
#include "util/stats.hpp"

namespace flowsched {
namespace {

void validate_case(const ControlCase& c) {
  if (c.m < 1) throw std::invalid_argument("ControlCase: m < 1");
  const std::size_t n = c.release.size();
  if (c.proc.size() != n || c.key.size() != n) {
    throw std::invalid_argument("ControlCase: column length mismatch");
  }
  double last = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (c.release[i] < last) {
      throw std::invalid_argument("ControlCase: releases must be non-decreasing");
    }
    last = c.release[i];
    if (!(c.proc[i] > 0)) throw std::invalid_argument("ControlCase: proc <= 0");
    if (c.key[i] < 0) throw std::invalid_argument("ControlCase: key < 0");
  }
  if (c.faulty() && c.plan.m() != c.m) {
    throw std::invalid_argument("ControlCase: plan covers wrong m");
  }
}

void collect_outcome(const ControlCase& c, OnlineEngine& engine,
                     AdaptiveRunReport* rep) {
  const int n = c.requests();
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(n));
  if (c.faulty()) {
    engine.drain_faults();
    const FaultLog& flog = engine.fault_log();
    for (int i = 0; i < n; ++i) {
      if (flog.fate(i) == TaskFate::kCompleted) {
        latencies.push_back(flog.completion(i) -
                            c.release[static_cast<std::size_t>(i)]);
      }
    }
    const FaultStats& st = flog.stats();
    rep->completed = st.completed;
    rep->dropped = st.dropped;
    rep->parked = st.parked;
    rep->retried = st.attempts + st.parked - n;
    rep->wasted_work = st.wasted_work;
  } else {
    for (int i = 0; i < n; ++i) {
      latencies.push_back(engine.completion_of(i) -
                          c.release[static_cast<std::size_t>(i)]);
    }
    rep->completed = n;
  }
  if (!latencies.empty()) {
    rep->mean_flow = mean(latencies);
    rep->fmax = *std::max_element(latencies.begin(), latencies.end());
  }
  rep->flows = std::move(latencies);
  double mk = 0;
  for (int j = 0; j < c.m; ++j) {
    mk = std::max(mk, engine.completions()[static_cast<std::size_t>(j)]);
  }
  rep->makespan = mk;
}

}  // namespace

std::string AdaptiveRunReport::str() const {
  std::ostringstream out;
  out << "requests=" << requests << " completed=" << completed
      << " dropped=" << dropped << " parked=" << parked
      << " retried=" << retried << " Fmax=" << fmax << " mean=" << mean_flow
      << " makespan=" << makespan;
  if (decisions > 0) {
    // Appended only when the controller actually ran, so controller-off
    // reports stay byte-identical to the static format.
    out << " decisions=" << decisions << " switches=" << switches
        << " fallbacks=" << fallbacks << " setup=" << setup_total
        << " layout=" << final_layout.str();
  }
  return out.str();
}

AdaptiveRunReport run_adaptive(const ControlCase& c, Dispatcher& dispatcher,
                               bool enabled, SchedObserver* observer,
                               bool unsafe_flap) {
  validate_case(c);
  const int m = c.m;
  const int n = c.requests();
  const bool on = enabled && c.control.enabled;
  const bool faulty = c.faulty();

  ReplicationController ctl(m, c.initial, c.control);
  if (unsafe_flap) ctl.set_unsafe_flap(true);
  OnlineEngine engine(m, dispatcher);
  if (faulty) engine.set_faults(&c.plan, c.recovery);
  if (observer != nullptr) {
    observer->on_run_begin(RunInfo{m, dispatcher.name(), {}});
    engine.set_observer(observer);
  }

  ControlLog log;
  // Owners with a pending setup debt: the decision epoch whose migration
  // moved them, or -1. The debt is collected by the owner's next request.
  std::vector<int> pending(static_cast<std::size_t>(m), -1);
  double next_epoch = c.control.period;

  for (int i = 0; i < n; ++i) {
    const double r = c.release[static_cast<std::size_t>(i)];
    if (on) {
      while (next_epoch <= r) {
        ControlObservation obs;
        obs.time = next_epoch;
        obs.backlog = engine.profile(next_epoch);
        obs.up.resize(static_cast<std::size_t>(m));
        for (int j = 0; j < m; ++j) {
          obs.up[static_cast<std::size_t>(j)] =
              !faulty || c.plan.is_up(j, next_epoch) ? 1 : 0;
        }
        obs.arrival_rate = static_cast<double>(i) / next_epoch;
        const ControlDecision d = ctl.decide(obs);
        for (int o = d.moved_lo; o < d.moved_hi; ++o) {
          // Only owners whose replica set really changed owe a setup: a
          // frontier step over an unchanged set moves no data.
          if (!(replica_set(d.from.strategy, o, d.from.k, m) ==
                replica_set(d.target.strategy, o, d.target.k, m))) {
            pending[static_cast<std::size_t>(o)] = d.epoch;
          }
        }
        log.record(obs, d);
        next_epoch += c.control.period;
      }
    }
    const int owner = c.key[static_cast<std::size_t>(i)] % m;
    double p = c.proc[static_cast<std::size_t>(i)];
    if (on && pending[static_cast<std::size_t>(owner)] >= 0) {
      p += c.control.setup_cost;
      log.record_charge(owner, pending[static_cast<std::size_t>(owner)],
                        c.control.setup_cost);
      pending[static_cast<std::size_t>(owner)] = -1;
    }
    engine.release(Task{
        .release = r,
        .proc = p,
        .eligible = on ? ctl.eligible_for_owner(owner)
                       : replica_set(c.initial.strategy, owner, c.initial.k, m)});
  }

  AdaptiveRunReport rep;
  rep.requests = n;
  rep.final_layout = on ? (ctl.migrating() ? ctl.target() : ctl.active())
                        : c.initial;
  collect_outcome(c, engine, &rep);
  if (on) {
    rep.decisions = static_cast<int>(log.decisions().size());
    rep.switches = log.switches();
    rep.fallbacks = log.fallbacks();
    rep.setup_total = log.setup_total();
    rep.log = std::move(log);
  }
  if (observer != nullptr) {
    engine.finish_observation();
    observer->on_run_end(rep.makespan);
  }
  return rep;
}

AdaptiveRunReport run_static(const ControlCase& c, Dispatcher& dispatcher,
                             SchedObserver* observer) {
  validate_case(c);
  const int m = c.m;
  const int n = c.requests();
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int owner = c.key[static_cast<std::size_t>(i)] % m;
    tasks.push_back(Task{
        .release = c.release[static_cast<std::size_t>(i)],
        .proc = c.proc[static_cast<std::size_t>(i)],
        .eligible = replica_set(c.initial.strategy, owner, c.initial.k, m)});
  }
  Instance inst(m, std::move(tasks));

  AdaptiveRunReport rep;
  rep.requests = n;
  rep.final_layout = c.initial;
  if (c.faulty()) {
    OnlineEngine engine = run_dispatcher_faulty(inst, dispatcher, c.plan,
                                                c.recovery, observer);
    collect_outcome(c, engine, &rep);
  } else {
    std::vector<double> latencies;
    latencies.reserve(static_cast<std::size_t>(n));
    const Schedule sched = observer != nullptr
                               ? run_dispatcher(inst, dispatcher, *observer)
                               : run_dispatcher(inst, dispatcher);
    for (int i = 0; i < n; ++i) latencies.push_back(sched.flow(i));
    rep.completed = n;
    if (!latencies.empty()) {
      rep.mean_flow = mean(latencies);
      rep.fmax = *std::max_element(latencies.begin(), latencies.end());
    }
    rep.flows = std::move(latencies);
    rep.makespan = sched.makespan();
  }
  return rep;
}

}  // namespace flowsched
