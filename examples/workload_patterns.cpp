// Workload patterns: how the access distribution shape (YCSB-style
// uniform / zipfian / latest / hotspot) interacts with replication and
// EFT scheduling in a key-value store.
//
// For each pattern we print the induced machine popularity, the LP maximum
// sustainable load for both replication strategies, and simulated latency
// percentiles at a fixed offered load — connecting the paper's analysis to
// the workload shapes practitioners actually benchmark with.
//
//   $ ./workload_patterns [requests]
#include <cstdio>
#include <vector>

#include "kvstore/cluster_sim.hpp"
#include "lp/maxload.hpp"
#include "util/table.hpp"
#include "workload/access_patterns.hpp"

using namespace flowsched;

int main(int argc, char** argv) {
  const int requests = argc > 1 ? std::atoi(argv[1]) : 15000;
  const int m = 12;
  const int k = 3;
  const int keys = 1200;

  struct Named {
    const char* name;
    AccessPattern pattern;
  };
  // A hotspot whose hot keys all hash to the same server (keys = 0 mod m):
  // the placement-correlated worst case round-robin cannot dilute.
  std::vector<double> correlated(static_cast<std::size_t>(keys), 0.0);
  for (int key = 0; key < keys; ++key) {
    correlated[static_cast<std::size_t>(key)] =
        key % m == 0 ? 0.8 / (keys / m) : 0.2 / (keys - keys / m);
  }

  const std::vector<Named> patterns{
      {"uniform", AccessPattern::uniform(keys)},
      {"zipfian(0.99)", AccessPattern::zipfian(keys, 0.99)},
      {"latest(1.0)", AccessPattern::latest(keys, 1.0)},
      {"hotspot(5%/80%)", AccessPattern::hotspot(keys, 0.05, 0.8)},
      {"correlated hotspot", AccessPattern::from_weights(correlated)},
  };

  TextTable table({"pattern", "hottest server %", "LP max load Over %",
                   "LP max load Disj %", "p50", "p99", "max"});
  for (const auto& [name, pattern] : patterns) {
    const auto machine_pop = pattern.machine_popularity(m);
    double peak = 0;
    for (double p : machine_pop) peak = std::max(peak, p);

    const double lp_over =
        100.0 *
        max_load_flow(machine_pop,
                      replica_sets(ReplicationStrategy::kOverlapping, k, m)) /
        m;
    const double lp_disj =
        100.0 *
        max_load_flow(machine_pop,
                      replica_sets(ReplicationStrategy::kDisjoint, k, m)) /
        m;

    StoreConfig sc;
    sc.m = m;
    sc.keys = keys;
    sc.strategy = ReplicationStrategy::kOverlapping;
    sc.k = k;
    const KeyValueStore store(sc, std::vector<double>(pattern.weights()));
    SimConfig sim;
    sim.lambda = 0.55 * m;
    sim.requests = requests;
    EftDispatcher eft(TieBreakKind::kMin);
    Rng rng(2026);
    const auto report = simulate_cluster(store, sim, eft, rng);

    table.add_row({name, TextTable::num(100.0 * peak, 1),
                   TextTable::num(lp_over, 0), TextTable::num(lp_disj, 0),
                   TextTable::num(report.p50, 2), TextTable::num(report.p99, 2),
                   TextTable::num(report.max_latency, 2)});
  }
  std::printf("== Access patterns on a %d-server store (k=%d, 55%%%% load, "
              "EFT-Min, overlapping) ==\n\n%s\n", m, k, table.render().c_str());
  std::printf(
      "Reading: with ~100 keys per server, per-key skew mostly averages out\n"
      "across owners — even an 80/20 hotspot looks uniform at machine level\n"
      "when its hot keys are spread by round-robin placement. What actually\n"
      "hurts is placement-CORRELATED hotness (all hot keys on one server):\n"
      "one server owns 80%% of the traffic, the disjoint LP threshold\n"
      "collapses, and only replication breadth keeps the tail in check.\n");
  return 0;
}
