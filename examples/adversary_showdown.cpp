// Adversary showdown: watch EFT walk into the Theorem 8 trap.
//
// Replays the fixed-size-interval adversary against every EFT tie-break and
// a few other dispatchers, printing the early schedule (Figure 3), the
// profile convergence, and the final competitive ratios — including the
// Theorem 10 padded stream that defeats tie-breaks the plain stream cannot.
//
//   $ ./adversary_showdown [m] [k]
#include <cstdio>

#include "adversary/smalltask.hpp"
#include "adversary/th8_stream.hpp"
#include "model/profile.hpp"
#include "sched/engine.hpp"
#include "util/table.hpp"

using namespace flowsched;

int main(int argc, char** argv) {
  const int m = argc > 1 ? std::atoi(argv[1]) : 8;
  const int k = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("== The Theorem 8 adversary, m=%d, k=%d ==\n\n", m, k);
  std::printf("Every step releases %d unit tasks whose intervals walk down\n", m);
  std::printf("from the top of the cluster, then %d tasks pinned to the\n", k);
  std::printf("bottom interval. EFT-Min greedily fills low indices and lets\n");
  std::printf("a staircase backlog build up: the stable profile w_tau.\n\n");

  // Early schedule, like Figure 3.
  {
    const auto inst = th8_instance(m, k, 3);
    EftDispatcher eft(TieBreakKind::kMin);
    const auto sched = run_dispatcher(inst, eft);
    std::printf("First 3 steps under EFT-Min:\n%s\n", sched.gantt().c_str());
  }

  // Profile convergence.
  {
    EftDispatcher eft(TieBreakKind::kMin);
    OnlineEngine engine(m, eft);
    const auto w_tau = stable_profile(m, k);
    int reached_at = -1;
    for (int t = 0; t < 4 * m * m && reached_at < 0; ++t) {
      for (int i = 1; i <= m; ++i) {
        const int lo = th8_task_type(i, m, k) - 1;
        engine.release(Task{.release = static_cast<double>(t),
                            .proc = 1.0,
                            .eligible = ProcSet::interval(lo, lo + k - 1)});
      }
      if (engine.profile(t + 1) == w_tau) reached_at = t + 1;
    }
    std::printf("Stable profile w_tau reached at t=%d; from then on the last\n",
                reached_at);
    std::printf("%d tasks of every step wait %d time units: flow = %d.\n\n", k,
                m - k, m - k + 1);
  }

  // The showdown table.
  TextTable table({"dispatcher", "stream", "Fmax", "OPT", "ratio",
                   "m-k+1 reached?"});
  auto add = [&](const std::string& name, const std::string& stream,
                 const AdversaryResult& r) {
    table.add_row({name, stream, TextTable::num(r.achieved_fmax, 2),
                   TextTable::num(r.opt_fmax, 3), TextTable::num(r.ratio(), 2),
                   r.achieved_fmax >= m - k + 1 ? "yes" : "no"});
  };

  EftDispatcher min_d(TieBreakKind::kMin);
  add("EFT-Min", "plain (Th. 8)", run_th8(min_d, m, k));
  EftDispatcher rand_d(TieBreakKind::kRand, 1);
  add("EFT-Rand", "plain (Th. 9)", run_th8(rand_d, m, k));
  EftDispatcher max_d(TieBreakKind::kMax);
  add("EFT-Max", "plain", run_th8(max_d, m, k));
  EftDispatcher max_padded(TieBreakKind::kMax);
  add("EFT-Max", "padded (Th. 10)", run_th10_smalltask(max_padded, m, k));
  EftDispatcher min_padded(TieBreakKind::kMin);
  add("EFT-Min", "padded (Th. 10)", run_th10_smalltask(min_padded, m, k));

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "EFT-Max escapes the plain stream (its ties push work to high,\n"
      "rarely-typed machines), but the Theorem 10 calibration tasks remove\n"
      "every tie and force ANY tie-break into the m-k+1 flow.\n");
  return 0;
}
