// Quickstart: build a small restricted-assignment instance, run the EFT
// scheduler, inspect the schedule and its flow times, and compare with the
// exact offline optimum.
//
//   $ ./quickstart
#include <cstdio>

#include "offline/unit_optimal.hpp"
#include "sched/engine.hpp"

using namespace flowsched;

int main() {
  // Four servers; requests may only run on the replicas of their key.
  // ProcSet indices are 0-based (printed 1-based as M1..M4).
  std::vector<Task> tasks{
      {.release = 0, .proc = 1, .eligible = ProcSet({0, 1})},
      {.release = 0, .proc = 1, .eligible = ProcSet({0, 1})},
      {.release = 0, .proc = 1, .eligible = ProcSet({1, 2})},
      {.release = 1, .proc = 1, .eligible = ProcSet({0})},
      {.release = 1, .proc = 1, .eligible = ProcSet({2, 3})},
      {.release = 2, .proc = 1, .eligible = ProcSet({0, 1})},
  };
  const Instance inst(4, std::move(tasks));

  std::printf("Instance: m=%d, n=%d, processing sets are %s\n\n", inst.m(),
              inst.n(), inst.structure().most_specific().c_str());

  // Run EFT (Algorithm 2) with the Min tie-break: each task goes, at its
  // release instant, to the eligible machine that would finish it first.
  EftDispatcher eft(TieBreakKind::kMin);
  const Schedule sched = run_dispatcher(inst, eft);

  const auto validation = sched.validate();
  std::printf("Schedule valid: %s\n", validation.ok() ? "yes" : "NO");
  if (!validation.ok()) std::printf("%s", validation.str().c_str());

  std::printf("\n%s\n", sched.gantt().c_str());
  for (int i = 0; i < inst.n(); ++i) {
    std::printf("task %d: released %.0f, machine M%d, start %.0f, flow %.0f\n",
                i, inst.task(i).release, sched.machine(i) + 1, sched.start(i),
                sched.flow(i));
  }
  std::printf("\nEFT-Min  Fmax = %.0f, mean flow = %.2f\n", sched.max_flow(),
              sched.mean_flow());

  // Exact offline optimum (unit tasks => polynomial via matching).
  std::printf("Offline OPT Fmax = %d\n", unit_optimal_fmax(inst));
  return 0;
}
