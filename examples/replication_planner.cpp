// Replication planner: a capacity-planning tool built on LP (15).
//
// Given a cluster size, a popularity skew estimate, and a target load, find
// the smallest replication factor k that sustains the target under each
// replication strategy — the operational question behind Figure 10.
//
//   $ ./replication_planner [m] [s] [target_load_percent]
#include <cstdio>
#include <vector>

#include "lp/maxload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/popularity.hpp"
#include "workload/replication.hpp"

using namespace flowsched;

namespace {

double median_load_percent(int m, double s, int k, ReplicationStrategy strategy,
                           int permutations) {
  std::vector<double> loads;
  Rng rng(31337);
  for (int p = 0; p < permutations; ++p) {
    const auto pop = make_popularity(PopularityCase::kShuffled, m, s, rng);
    loads.push_back(100.0 * max_load_flow(pop, replica_sets(strategy, k, m)) / m);
  }
  return median(loads);
}

}  // namespace

int main(int argc, char** argv) {
  const int m = argc > 1 ? std::atoi(argv[1]) : 15;
  const double s = argc > 2 ? std::atof(argv[2]) : 1.0;
  const double target = argc > 3 ? std::atof(argv[3]) : 80.0;
  const int permutations = 50;

  std::printf("== Replication planner: m=%d, Zipf s=%.2f, target %.0f%% ==\n\n",
              m, s, target);

  TextTable table({"k", "overlapping max-load %", "disjoint max-load %"});
  int best_over = -1;
  int best_disj = -1;
  for (int k = 1; k <= m; ++k) {
    const double over =
        median_load_percent(m, s, k, ReplicationStrategy::kOverlapping,
                            permutations);
    const double disj = median_load_percent(
        m, s, k, ReplicationStrategy::kDisjoint, permutations);
    if (best_over < 0 && over >= target) best_over = k;
    if (best_disj < 0 && disj >= target) best_disj = k;
    table.add_row({std::to_string(k), TextTable::num(over, 1),
                   TextTable::num(disj, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  auto describe = [&](const char* name, int k) {
    if (k < 0) {
      std::printf("%s: target unreachable even at k=m.\n", name);
    } else {
      std::printf("%s: replicate each key on %d machine(s) (storage cost %dx).\n",
                  name, k, k);
    }
  };
  describe("Overlapping (ring)", best_over);
  describe("Disjoint blocks   ", best_disj);
  std::printf(
      "\nNote: overlapping typically reaches the target with a smaller k —\n"
      "the paper's 'up to 50%% higher load' observation — but gives up the\n"
      "(3 - 2/k) worst-case guarantee EFT enjoys on disjoint sets.\n");
  return 0;
}
