// Key-value store tail-latency study: the motivating scenario of the paper.
//
// A 15-server cluster stores 1500 keys with Zipf(1.0) popularity, replicated
// with factor 3 on a Dynamo-style ring. We sweep the offered load and report
// p50/p99/max latency for several replica-selection policies, showing how
// EFT-style least-work dispatch tames the tail versus naive policies and how
// the replication structure (overlapping vs disjoint) shifts saturation.
//
//   $ ./kvstore_tail_latency [requests]
#include <cstdio>
#include <memory>
#include <vector>

#include "kvstore/cluster_sim.hpp"
#include "lp/maxload.hpp"
#include "util/table.hpp"

using namespace flowsched;

int main(int argc, char** argv) {
  const int requests = argc > 1 ? std::atoi(argv[1]) : 20000;
  StoreConfig sc;
  sc.m = 15;
  sc.keys = 1500;
  sc.zipf_s = 1.0;
  sc.k = 3;

  for (auto strategy :
       {ReplicationStrategy::kOverlapping, ReplicationStrategy::kDisjoint}) {
    sc.strategy = strategy;
    Rng store_rng(7);
    const KeyValueStore store(sc, store_rng);

    const double lp_load =
        100.0 *
        max_load_flow(store.machine_popularity(),
                      replica_sets(strategy, sc.k, sc.m)) /
        sc.m;
    std::printf("=== %s replication (k=%d) — LP max load %.0f%% ===\n",
                to_string(strategy).c_str(), sc.k, lp_load);

    TextTable table({"load %", "policy", "p50", "p99", "max"});
    for (int load : {30, 50, 70}) {
      std::vector<std::unique_ptr<Dispatcher>> policies;
      policies.push_back(std::make_unique<EftDispatcher>(TieBreakKind::kMin));
      policies.push_back(std::make_unique<RandomEligibleDispatcher>(3));
      policies.push_back(std::make_unique<RoundRobinDispatcher>());
      policies.push_back(std::make_unique<JsqDispatcher>(TieBreakKind::kMin));
      for (auto& policy : policies) {
        SimConfig sim;
        sim.lambda = load / 100.0 * sc.m;
        sim.requests = requests;
        Rng rng(1000 + load);  // same arrival stream for every policy
        const auto report = simulate_cluster(store, sim, *policy, rng);
        table.add_row({std::to_string(load), policy->name(),
                       TextTable::num(report.p50, 2),
                       TextTable::num(report.p99, 2),
                       TextTable::num(report.max_latency, 2)});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "Takeaway: EFT keeps p99 near the service time well past the loads\n"
      "where random/round-robin replica selection has already built deep\n"
      "queues, and overlapping replication sustains higher load than\n"
      "disjoint blocks under popularity skew.\n");
  return 0;
}
