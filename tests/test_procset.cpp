#include "model/procset.hpp"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(ProcSet, SortsAndDeduplicates) {
  const ProcSet s({3, 1, 3, 2});
  EXPECT_EQ(s.machines(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.size(), 3);
}

TEST(ProcSet, RejectsNegativeIndex) {
  EXPECT_THROW(ProcSet({0, -1}), std::invalid_argument);
}

TEST(ProcSet, AllAndSingle) {
  EXPECT_EQ(ProcSet::all(3).machines(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ProcSet::single(4).machines(), (std::vector<int>{4}));
  EXPECT_THROW(ProcSet::all(0), std::invalid_argument);
}

TEST(ProcSet, Interval) {
  EXPECT_EQ(ProcSet::interval(2, 4).machines(), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(ProcSet::interval(3, 3).machines(), (std::vector<int>{3}));
  EXPECT_THROW(ProcSet::interval(4, 2), std::invalid_argument);
}

TEST(ProcSet, RingIntervalWraps) {
  // I_3(5) on m=6: machines {5, 0, 1}.
  EXPECT_EQ(ProcSet::ring_interval(5, 3, 6).machines(),
            (std::vector<int>{0, 1, 5}));
  EXPECT_EQ(ProcSet::ring_interval(1, 3, 6).machines(),
            (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ProcSet::ring_interval(0, 6, 6).size(), 6);
  EXPECT_THROW(ProcSet::ring_interval(0, 7, 6), std::invalid_argument);
  EXPECT_THROW(ProcSet::ring_interval(6, 2, 6), std::invalid_argument);
}

TEST(ProcSet, Contains) {
  const ProcSet s({1, 3, 5});
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(2));
}

TEST(ProcSet, SubsetAndIntersection) {
  const ProcSet a({1, 2});
  const ProcSet b({1, 2, 3});
  const ProcSet c({4, 5});
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(ProcSet().is_subset_of(a));  // empty set is subset of anything
}

TEST(ProcSet, Within) {
  EXPECT_TRUE(ProcSet({0, 4}).within(5));
  EXPECT_FALSE(ProcSet({0, 5}).within(5));
  EXPECT_TRUE(ProcSet().within(1));
}

TEST(ProcSet, Contiguity) {
  EXPECT_TRUE(ProcSet({2, 3, 4}).is_contiguous());
  EXPECT_FALSE(ProcSet({2, 4}).is_contiguous());
  EXPECT_TRUE(ProcSet().is_contiguous());
}

TEST(ProcSet, IntervalDefinitionIncludesWrappedForm) {
  // {0, 1, 5} on m=6 is the wrapped interval {j <= 1 or j >= 5}.
  EXPECT_TRUE(ProcSet({0, 1, 5}).is_interval(6));
  EXPECT_TRUE(ProcSet({2, 3}).is_interval(6));
  // {0, 2, 4}: neither itself nor its complement {1, 3, 5} is contiguous.
  EXPECT_FALSE(ProcSet({0, 2, 4}).is_interval(6));
  // Full set is trivially an interval.
  EXPECT_TRUE(ProcSet::all(6).is_interval(6));
  EXPECT_THROW(ProcSet({7}).is_interval(6), std::invalid_argument);
}

TEST(ProcSet, RingIntervalsAreIntervalsInPaperSense) {
  for (int start = 0; start < 6; ++start) {
    for (int k = 1; k <= 6; ++k) {
      EXPECT_TRUE(ProcSet::ring_interval(start, k, 6).is_interval(6))
          << "start=" << start << " k=" << k;
    }
  }
}

TEST(ProcSet, MinMaxAndEmptyThrows) {
  const ProcSet s({2, 7});
  EXPECT_EQ(s.min(), 2);
  EXPECT_EQ(s.max(), 7);
  EXPECT_THROW(ProcSet().min(), std::logic_error);
  EXPECT_THROW(ProcSet().max(), std::logic_error);
}

TEST(ProcSet, StringUsesOneBasedNames) {
  EXPECT_EQ(ProcSet({1, 2}).str(), "{M2,M3}");
}

}  // namespace
}  // namespace flowsched
