#include "runner/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace flowsched {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, RejectsBadConstruction) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  EXPECT_THROW(ThreadPool(2, 0), std::invalid_argument);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("replicate failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, BoundedQueueAppliesBackpressure) {
  // One worker pinned on a gate; queue capacity 2. The 4th submit (1
  // running + 2 queued) must block until the gate opens.
  ThreadPool pool(1, 2);
  std::promise<void> gate;
  auto gate_future = gate.get_future().share();
  auto running = pool.submit([gate_future] { gate_future.wait(); });
  // Wait until the worker picked the gate task up (queue drained to 0).
  while (pool.pending() > 0) std::this_thread::yield();
  auto q1 = pool.submit([] {});
  auto q2 = pool.submit([] {});
  EXPECT_EQ(pool.pending(), 2u);

  std::atomic<bool> fourth_done{false};
  std::thread submitter([&] {
    auto f = pool.submit([] {});
    f.wait();
    fourth_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(fourth_done) << "submit did not block on a full queue";

  gate.set_value();
  submitter.join();
  EXPECT_TRUE(fourth_done);
  running.get();
  q1.get();
  q2.get();
}

TEST(ThreadPool, ShutdownDrainsPendingTasksUnderContention) {
  std::atomic<int> done{0};
  constexpr int kTasks = 500;
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(8, 64);
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.submit([&done] { ++done; }));
    }
    // Destructor runs here while many tasks are still queued.
  }
  EXPECT_EQ(done.load(), kTasks);
  for (auto& f : futures) f.get();  // all futures ready, none broken
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, ConcurrentProducersSeeEveryResult) {
  ThreadPool pool(4, 32);
  std::atomic<long> sum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      std::vector<std::future<int>> futures;
      for (int i = 0; i < 200; ++i) {
        futures.push_back(pool.submit([p, i] { return p * 1000 + i; }));
      }
      for (auto& f : futures) sum += f.get();
    });
  }
  for (auto& t : producers) t.join();
  long expected = 0;
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 200; ++i) expected += p * 1000 + i;
  }
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace flowsched
