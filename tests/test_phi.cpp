// Computational validation of Lemma 5: the weighted distance Phi is
// non-increasing along EFT runs of the Theorem 8 adversary, for every
// tie-break policy, and hits its floor exactly when the profile reaches
// the stable profile.
#include "adversary/phi.hpp"

#include <gtest/gtest.h>

#include "adversary/th8_stream.hpp"
#include "model/profile.hpp"
#include "sched/engine.hpp"

namespace flowsched {
namespace {

TEST(Phi, ZeroProfileValue) {
  // Empty profile: phi(j) = 2^{w_tau(j)} * (m - k + 1).
  const int m = 6;
  const int k = 3;
  const std::vector<double> w(static_cast<std::size_t>(m), 0.0);
  // Machine 0 (0-based): w_tau = m - k = 3 -> 8 * 4 = 32.
  EXPECT_DOUBLE_EQ(phi_weighted_distance(w, m, k, 0), 32.0);
  // Last machine: w_tau = 0 -> 1 * 4 = 4.
  EXPECT_DOUBLE_EQ(phi_weighted_distance(w, m, k, m - 1), 4.0);
}

TEST(Phi, StableProfileMinimizesPhiOverReachableProfiles) {
  // Phi at w_tau is strictly below Phi at any profile that is behind it.
  const int m = 6;
  const int k = 3;
  const auto w_tau = stable_profile(m, k);
  const double at_stable = phi_total(w_tau, m, k);
  std::vector<double> behind = w_tau;
  behind[0] -= 1;  // strictly behind
  EXPECT_LT(at_stable, phi_total(behind, m, k));
}

TEST(Phi, PartialSumsAddUp) {
  const int m = 8;
  const int k = 3;
  const std::vector<double> w{5, 4, 3, 3, 2, 2, 1, 0};
  EXPECT_NEAR(phi_partial(w, m, k, 0, 3) + phi_partial(w, m, k, 4, 7),
              phi_total(w, m, k), 1e-9);
  EXPECT_THROW(phi_partial(w, m, k, 3, 2), std::invalid_argument);
  EXPECT_THROW(phi_weighted_distance(w, m, k, 8), std::invalid_argument);
}

class PhiDescent : public ::testing::TestWithParam<TieBreakKind> {};

TEST_P(PhiDescent, Lemma5PhiNonIncreasingUnderTh8Adversary) {
  const int m = 8;
  const int k = 3;
  EftDispatcher eft(GetParam(), /*seed=*/77);
  OnlineEngine engine(m, eft);
  double prev = phi_total(engine.profile(0.0), m, k);
  for (int t = 0; t < 80; ++t) {
    for (int i = 1; i <= m; ++i) {
      const int lo = th8_task_type(i, m, k) - 1;
      engine.release(Task{.release = static_cast<double>(t),
                          .proc = 1.0,
                          .eligible = ProcSet::interval(lo, lo + k - 1)});
    }
    const double now = phi_total(engine.profile(t + 1.0), m, k);
    EXPECT_LE(now, prev + 1e-9) << "Phi increased at t=" << t;
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTieBreaks, PhiDescent,
                         ::testing::Values(TieBreakKind::kMin,
                                           TieBreakKind::kMax,
                                           TieBreakKind::kRand),
                         [](const ::testing::TestParamInfo<TieBreakKind>& info) {
                           return to_string(info.param);
                         });

TEST(PhiDescent, EftMinReachesThePhiFloor) {
  // For EFT-Min, Phi descends to exactly Phi(w_tau) and stays there.
  const int m = 6;
  const int k = 3;
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(m, eft);
  const double floor_phi = phi_total(stable_profile(m, k), m, k);
  double last = 0;
  for (int t = 0; t < 4 * m * m; ++t) {
    for (int i = 1; i <= m; ++i) {
      const int lo = th8_task_type(i, m, k) - 1;
      engine.release(Task{.release = static_cast<double>(t),
                          .proc = 1.0,
                          .eligible = ProcSet::interval(lo, lo + k - 1)});
    }
    last = phi_total(engine.profile(t + 1.0), m, k);
  }
  EXPECT_DOUBLE_EQ(last, floor_phi);
}

}  // namespace
}  // namespace flowsched
