// Weighted flow time (docs/scenarios.md): the weight column on Task, the
// shared weighted_flow_term recipe, the Rational-exact aggregates on
// Schedule / MetricsCollector / InvariantAuditor (the [weighted-accounting]
// bitwise contract), the instance-format round trip, the weight generator,
// and the cluster sim's heavy-key weighted latency report across the batch,
// streaming, and sharded paths.
#include "model/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "check/gen.hpp"
#include "io/instance_io.hpp"
#include "kvstore/cluster_sim.hpp"
#include "model/instance.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "sched/dispatchers.hpp"
#include "sched/engine.hpp"
#include "sched/sharded/sharded.hpp"
#include "util/rng.hpp"

namespace flowsched {
namespace {

Instance weighted_instance() {
  std::vector<Task> tasks = {
      {.release = 0.0, .proc = 2.0, .eligible = ProcSet({0, 1}), .weight = 1.5},
      {.release = 0.5, .proc = 1.0, .eligible = ProcSet({1, 2}),
       .weight = 0.25},
      {.release = 1.0, .proc = 1.5, .eligible = ProcSet()},  // w = 1 default
      {.release = 1.25, .proc = 0.5, .eligible = ProcSet({0}), .weight = 8.0},
      {.release = 2.0, .proc = 1.0, .eligible = ProcSet({1, 2}),
       .weight = 0.5},
  };
  return Instance(3, std::move(tasks));
}

// weighted_flow_term at unit weight is the identity bitwise — the reason
// unweighted and weighted aggregates collapse exactly at w = 1.
TEST(Weighted, FlowTermUnitIdentity) {
  for (double f : {0.0, 0.125, 1.0, 3.625, 1e6 + 0.25}) {
    EXPECT_EQ(weighted_flow_term(1.0, f), f);
  }
  EXPECT_EQ(weighted_flow_term(0.25, 3.0), 0.75);  // dyadic exact product
  EXPECT_EQ(weighted_flow_term(8.0, 0.125), 1.0);
}

// Schedule aggregates: max_weighted_flow is the max of per-task
// weighted_flow terms, each term matching weighted_flow_term bitwise.
TEST(Weighted, ScheduleAggregates) {
  const Instance inst = weighted_instance();
  auto policy = make_eft_min();
  const Schedule sched = run_dispatcher(inst, *policy);
  ASSERT_TRUE(sched.complete());

  double max_term = 0, sum_terms = 0;
  for (int i = 0; i < inst.n(); ++i) {
    const double term = weighted_flow_term(inst.task(i).weight, sched.flow(i));
    EXPECT_EQ(sched.weighted_flow(i), term) << "task " << i;
    max_term = std::max(max_term, term);
    sum_terms += term;  // all terms dyadic: double accumulation is exact
  }
  EXPECT_EQ(sched.max_weighted_flow(), max_term);
  EXPECT_EQ(sched.total_weighted_flow(), sum_terms);
  EXPECT_FALSE(inst.unit_weights());
  EXPECT_EQ(inst.wmax(), 8.0);
}

// [weighted-accounting]: collector, auditor, and schedule compute the
// weighted aggregates from independent event streams with the shared
// recipe, so all three agree bitwise — not just within an epsilon.
TEST(Weighted, CollectorAuditorScheduleBitwiseAgree) {
  const Instance inst = weighted_instance();
  auto policy = make_eft_min();
  InvariantAuditor auditor;
  MetricsCollector metrics;
  MulticastObserver fan({&auditor, &metrics});
  const Schedule sched = run_dispatcher(inst, *policy, fan);

  EXPECT_TRUE(auditor.ok()) << auditor.report();
  EXPECT_TRUE(metrics.any_weighted());
  EXPECT_EQ(metrics.max_weighted_flow(), sched.max_weighted_flow());
  EXPECT_EQ(metrics.total_weighted_flow(), sched.total_weighted_flow());
  EXPECT_EQ(auditor.last_max_weighted_flow(), sched.max_weighted_flow());
  EXPECT_EQ(auditor.last_total_weighted_flow(), sched.total_weighted_flow());

  double wsum = 0;
  for (const Task& t : inst.tasks()) wsum += t.weight;
  EXPECT_EQ(metrics.weighted_mean_flow(),
            metrics.total_weighted_flow() / wsum);
}

// Unit weights collapse the weighted aggregates onto the unweighted ones
// bitwise, and any_weighted stays false.
TEST(Weighted, UnitWeightsCollapse) {
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back({.release = 0.25 * i,
                     .proc = 0.5 + 0.125 * (i % 4),
                     .eligible = ProcSet({i % 3, (i + 1) % 3})});
  }
  const Instance inst(3, std::move(tasks));
  EXPECT_TRUE(inst.unit_weights());

  auto policy = make_eft_min();
  MetricsCollector metrics;
  const Schedule sched = run_dispatcher(inst, *policy, metrics);
  EXPECT_FALSE(metrics.any_weighted());
  EXPECT_EQ(metrics.max_weighted_flow(), metrics.max_flow());
  EXPECT_EQ(sched.max_weighted_flow(), sched.max_flow());
  EXPECT_EQ(metrics.total_weighted_flow(), sched.total_weighted_flow());
}

// The instance format round-trips the optional 4th weight token bitwise,
// and unit-weight instances keep the legacy 3-token lines.
TEST(Weighted, InstanceIoRoundTrip) {
  const Instance inst = weighted_instance();
  const std::string text = instance_to_string(inst);
  const Instance back = parse_instance_string(text);
  ASSERT_EQ(back.n(), inst.n());
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(back.task(i).weight, inst.task(i).weight) << "task " << i;
  }
  EXPECT_EQ(instance_to_string(back), text);

  std::vector<Task> unit = {
      {.release = 0.0, .proc = 1.0, .eligible = ProcSet({0})}};
  const Instance unit_inst(1, std::move(unit));
  const std::string unit_text = instance_to_string(unit_inst);
  // The task line keeps the legacy 4-token shape: "task <r> <p> <machines>".
  const std::size_t task_pos = unit_text.find("task ");
  ASSERT_NE(task_pos, std::string::npos);
  const std::string task_line =
      unit_text.substr(task_pos, unit_text.find('\n', task_pos) - task_pos);
  std::istringstream tokens(task_line);
  std::string tok;
  int count = 0;
  while (tokens >> tok) ++count;
  EXPECT_EQ(count, 4) << task_line;
  EXPECT_TRUE(parse_instance_string(unit_text).unit_weights());
}

// with_random_weights: every weight is a dyadic multiple of 1/8 in
// [1/8, 2] or the heavy tail value, releases/procs/sets are untouched, and
// the draw is reproducible from the rng seed.
TEST(Weighted, RandomWeightsDyadicAndReproducible) {
  std::vector<Task> tasks;
  for (int i = 0; i < 200; ++i) {
    tasks.push_back({.release = 0.125 * i,
                     .proc = 0.25,
                     .eligible = ProcSet({i % 4})});
  }
  const Instance inst(4, std::move(tasks));

  Rng rng(99);
  const Instance weighted = with_random_weights(inst, rng, 0.1, 8.0);
  Rng rng2(99);
  const Instance weighted2 = with_random_weights(inst, rng2, 0.1, 8.0);
  bool any_heavy = false;
  for (int i = 0; i < inst.n(); ++i) {
    const double w = weighted.task(i).weight;
    EXPECT_EQ(w, weighted2.task(i).weight);
    EXPECT_EQ(weighted.task(i).release, inst.task(i).release);
    EXPECT_EQ(weighted.task(i).proc, inst.task(i).proc);
    if (w == 8.0) {
      any_heavy = true;
      continue;
    }
    const double scaled = w * 8.0;
    EXPECT_EQ(scaled, static_cast<double>(static_cast<int>(scaled)));
    EXPECT_GE(scaled, 1.0);
    EXPECT_LE(scaled, 16.0);
  }
  EXPECT_TRUE(any_heavy);  // 200 draws at p = 0.1
  EXPECT_FALSE(weighted.unit_weights());
}

// The cluster sim's weighted report: heavy-key weights are a pure function
// of the key, so the legacy streaming path and the sharded path aggregate
// the identical weighted latency — the report strings match byte for byte
// and carry the weighted columns.
TEST(Weighted, ClusterWeightedReportMatchesAcrossPaths) {
  StoreConfig store_config;
  store_config.m = 16;
  store_config.keys = 400;
  store_config.zipf_s = 0.9;
  store_config.k = 4;
  store_config.strategy = ReplicationStrategy::kDisjoint;
  StreamConfig config;
  config.lambda = 10.0;
  config.requests = 3000;
  config.dist = ServiceDist::kExponential;
  config.heavy_keys = 16;
  config.heavy_weight = 8.0;

  Rng rng_a(77);
  KeyValueStore store_a(store_config, rng_a);
  auto policy = make_eft_min();
  const StreamReport legacy =
      simulate_cluster_streaming(store_a, config, *policy, rng_a);
  EXPECT_NE(legacy.str().find("fmaxw="), std::string::npos) << legacy.str();

  Rng rng_b(77);
  KeyValueStore store_b(store_config, rng_b);
  ShardedEngine::Options opts;
  opts.shards = 4;
  opts.shard_workers = 2;
  const StreamReport sharded = simulate_cluster_streaming_sharded(
      store_b, config, [](int) { return make_eft_min(); }, opts, rng_b);
  EXPECT_EQ(sharded.str(), legacy.str());
}

}  // namespace
}  // namespace flowsched
