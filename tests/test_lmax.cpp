#include "offline/lmax.hpp"

#include <gtest/gtest.h>

#include "offline/preemptive_optimal.hpp"
#include "offline/unit_optimal.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

DeadlineInstance unit_deadlines(
    int m, std::vector<std::tuple<double, double, ProcSet>> specs) {
  std::vector<DeadlineTask> tasks;
  for (auto& [r, d, set] : specs) {
    tasks.push_back(DeadlineTask{
        Task{.release = r, .proc = 1.0, .eligible = std::move(set)}, d});
  }
  return DeadlineInstance(m, std::move(tasks));
}

TEST(DeadlineInstance, SortsAndAligns) {
  auto inst = unit_deadlines(2, {{2.0, 5.0, ProcSet({0})},
                                 {0.0, 1.0, ProcSet({1})}});
  EXPECT_DOUBLE_EQ(inst.instance().task(0).release, 0.0);
  EXPECT_DOUBLE_EQ(inst.deadline(0), 1.0);
  EXPECT_DOUBLE_EQ(inst.deadline(1), 5.0);
}

TEST(DeadlineInstance, RejectsDeadlineBeforeRelease) {
  EXPECT_THROW(unit_deadlines(2, {{3.0, 2.0, ProcSet({0})}}),
               std::invalid_argument);
}

TEST(UnitLmax, SingleTaskLatenessExact) {
  // Released at 0, deadline 3: completes at 1 -> lateness -2.
  const auto inst = unit_deadlines(1, {{0.0, 3.0, ProcSet({0})}});
  EXPECT_EQ(unit_optimal_lmax(inst), -2);
}

TEST(UnitLmax, ContentionPushesLatenessPositive) {
  // Three unit tasks at 0, all on M0, deadlines 1: completions 1,2,3 ->
  // Lmax = 2.
  const auto inst = unit_deadlines(1, {{0.0, 1.0, ProcSet({0})},
                                       {0.0, 1.0, ProcSet({0})},
                                       {0.0, 1.0, ProcSet({0})}});
  EXPECT_EQ(unit_optimal_lmax(inst), 2);
}

TEST(UnitLmax, SlackDeadlinesAbsorbContention) {
  // Same three tasks but deadlines 1, 2, 3: achievable with Lmax = 0.
  const auto inst = unit_deadlines(1, {{0.0, 1.0, ProcSet({0})},
                                       {0.0, 2.0, ProcSet({0})},
                                       {0.0, 3.0, ProcSet({0})}});
  EXPECT_EQ(unit_optimal_lmax(inst), 0);
}

TEST(UnitLmax, FmaxViewMatchesUnitOptimalFmax) {
  // With d_i = r_i, Lmax == Fmax (the paper's reduction).
  Rng rng(5);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 12;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.sets = RandomSets::kArbitrary;
  for (int trial = 0; trial < 8; ++trial) {
    const auto inst = random_instance(opts, rng);
    const auto view = DeadlineInstance::fmax_view(inst);
    EXPECT_EQ(unit_optimal_lmax(view), unit_optimal_fmax(inst))
        << "trial " << trial;
  }
}

TEST(UnitLmax, FeasibilityMonotone) {
  const auto inst = unit_deadlines(1, {{0.0, 1.0, ProcSet({0})},
                                       {0.0, 1.0, ProcSet({0})}});
  const int opt = unit_optimal_lmax(inst);
  EXPECT_FALSE(unit_lmax_feasible(inst, opt - 1));
  EXPECT_TRUE(unit_lmax_feasible(inst, opt));
  EXPECT_TRUE(unit_lmax_feasible(inst, opt + 3));
}

TEST(UnitLmax, SparseReleasesStayCheap) {
  // Regression: slot windows are bounded by r_i + n, not by the global
  // max release, so huge release gaps stay cheap.
  const auto inst = unit_deadlines(1, {{0.0, 1.0, ProcSet({0})},
                                       {1000000.0, 1000000.0, ProcSet({0})}});
  EXPECT_EQ(unit_optimal_lmax(inst), 1);
}

TEST(UnitLmax, RejectsNonUnitInput) {
  std::vector<DeadlineTask> tasks{
      DeadlineTask{Task{.release = 0, .proc = 2, .eligible = ProcSet({0})}, 1.0}};
  const DeadlineInstance inst(1, std::move(tasks));
  EXPECT_THROW(unit_lmax_feasible(inst, 3), std::invalid_argument);
}

TEST(PreemptiveLmax, MatchesClosedFormOnOneMachine) {
  // Work 4 on one machine released at 0; deadlines 2 and 2; EDF-style
  // optimum: completions 2 and 4, lateness max = 2.
  std::vector<DeadlineTask> tasks{
      DeadlineTask{Task{.release = 0, .proc = 2, .eligible = ProcSet({0})}, 2.0},
      DeadlineTask{Task{.release = 0, .proc = 2, .eligible = ProcSet({0})}, 2.0}};
  const DeadlineInstance inst(1, std::move(tasks));
  EXPECT_NEAR(preemptive_optimal_lmax(inst), 2.0, 1e-6);
}

TEST(PreemptiveLmax, NegativeLatenessWhenSlack) {
  std::vector<DeadlineTask> tasks{
      DeadlineTask{Task{.release = 0, .proc = 1, .eligible = ProcSet({0})}, 10.0}};
  const DeadlineInstance inst(1, std::move(tasks));
  EXPECT_NEAR(preemptive_optimal_lmax(inst), -9.0, 1e-6);
}

TEST(PreemptiveLmax, FmaxViewMatchesPreemptiveOptimalFmax) {
  Rng rng(7);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 10;
  opts.max_release = 5.0;
  for (int trial = 0; trial < 5; ++trial) {
    const auto inst = random_instance(opts, rng);
    const auto view = DeadlineInstance::fmax_view(inst);
    EXPECT_NEAR(preemptive_optimal_lmax(view), preemptive_optimal_fmax(inst),
                1e-5)
        << "trial " << trial;
  }
}

TEST(PreemptiveLmax, NeverExceedsUnitNonPreemptiveLmax) {
  Rng rng(11);
  RandomInstanceOptions opts;
  opts.m = 2;
  opts.n = 8;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.sets = RandomSets::kIntervals;
  for (int trial = 0; trial < 6; ++trial) {
    const auto plain = random_instance(opts, rng);
    std::vector<DeadlineTask> tasks;
    for (const Task& t : plain.tasks()) {
      tasks.push_back(DeadlineTask{t, t.release + 2.0});
    }
    const DeadlineInstance inst(plain.m(), std::move(tasks));
    EXPECT_LE(preemptive_optimal_lmax(inst),
              unit_optimal_lmax(inst) + 1e-6)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace flowsched
