#include "adversary/smalltask.hpp"

#include <gtest/gtest.h>

#include "adversary/th8_stream.hpp"
#include "sched/dispatchers.hpp"

namespace flowsched {
namespace {

TEST(Th10SmallTask, ConstantsSatisfyTheConstruction) {
  // epsilon < delta / (2m) for every supported m, and both far above the
  // dispatcher tie tolerance.
  EXPECT_LT(kTh10Epsilon, kTh10Delta / (2 * 1024));
  EXPECT_GT(kTh10Epsilon, 1e-11);
}

TEST(Th10SmallTask, DefeatsEftMax) {
  // The whole point of the construction: a tie-break that escapes the plain
  // Theorem 8 stream (EFT-Max) is forced into the same m-k+1 flow.
  const int m = 6;
  const int k = 3;
  EftDispatcher max_d(TieBreakKind::kMax);
  const auto padded = run_th10_smalltask(max_d, m, k);
  EXPECT_GE(padded.achieved_fmax, m - k + 1);
  EXPECT_TRUE(padded.schedule.validate().ok());

  // Control: without padding, EFT-Max does NOT reach m-k+1 on this stream
  // (it breaks ties toward high, lightly-typed machines).
  EftDispatcher max_plain(TieBreakKind::kMax);
  const auto plain = run_th8(max_plain, m, k);
  EXPECT_LT(plain.achieved_fmax, m - k + 1);
}

TEST(Th10SmallTask, DefeatsEftRandWithAnySeed) {
  const int m = 6;
  const int k = 3;
  for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    EftDispatcher rand_d(TieBreakKind::kRand, seed);
    const auto result = run_th10_smalltask(rand_d, m, k);
    EXPECT_GE(result.achieved_fmax, m - k + 1) << "seed " << seed;
  }
}

TEST(Th10SmallTask, MinAndMaxBecomeIndistinguishable) {
  // With the calibration delays there are no ties left, so every tie-break
  // policy produces the same Fmax.
  const int m = 5;
  const int k = 2;
  EftDispatcher min_d(TieBreakKind::kMin);
  EftDispatcher max_d(TieBreakKind::kMax);
  const auto r_min = run_th10_smalltask(min_d, m, k);
  const auto r_max = run_th10_smalltask(max_d, m, k);
  EXPECT_DOUBLE_EQ(r_min.achieved_fmax, r_max.achieved_fmax);
}

TEST(Th10SmallTask, OptRemainsNearOne) {
  const int m = 6;
  const int k = 3;
  EftDispatcher max_d(TieBreakKind::kMax);
  const auto result = run_th10_smalltask(max_d, m, k);
  EXPECT_LT(result.opt_fmax, 1.001);
  EXPECT_GE(result.ratio(), (m - k + 1) / 1.001);
}

TEST(Th10SmallTask, CalibrationVolumeIsNegligible) {
  // Total small-task work per step is at most sum_i (i+1)*delta.
  const int m = 6;
  const int k = 3;
  EftDispatcher max_d(TieBreakKind::kMax);
  const auto result = run_th10_smalltask(max_d, m, k, 20);
  double small_work = 0;
  double regular_work = 0;
  for (const Task& t : result.schedule.instance().tasks()) {
    (t.proc < 0.5 ? small_work : regular_work) += t.proc;
  }
  EXPECT_LT(small_work, regular_work * 1e-4);
}

TEST(Th10SmallTask, RejectsBadParameters) {
  EftDispatcher d(TieBreakKind::kMin);
  EXPECT_THROW(run_th10_smalltask(d, 4, 1), std::invalid_argument);
  EXPECT_THROW(run_th10_smalltask(d, 4, 4), std::invalid_argument);
  EXPECT_THROW(run_th10_smalltask(d, 2048, 2), std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
