// Proposition 1: FIFO(I) = EFT(I) on every instance of P|online-r_i|Fmax
// when both use the same tie-break policy. FIFO here is a genuine
// discrete-event queue simulation and EFT an immediate-dispatch rule, so
// schedule-for-schedule equality is a strong cross-check of both.
#include <gtest/gtest.h>

#include "sched/engine.hpp"
#include "sched/fifo.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

void expect_same_schedule(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.instance().n(), b.instance().n());
  for (int i = 0; i < a.instance().n(); ++i) {
    EXPECT_EQ(a.machine(i), b.machine(i)) << "mu differs at task " << i;
    EXPECT_NEAR(a.start(i), b.start(i), 1e-9) << "sigma differs at task " << i;
  }
}

struct EquivalenceCase {
  int m;
  int n;
  bool unit;
  TieBreakKind tie;
  std::uint64_t seed;
};

class Prop1Equivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(Prop1Equivalence, FifoEqualsEft) {
  const auto param = GetParam();
  Rng rng(param.seed);
  RandomInstanceOptions opts;
  opts.m = param.m;
  opts.n = param.n;
  opts.unit_tasks = param.unit;
  opts.max_release = param.n / 2.0;
  const auto inst = random_instance(opts, rng);

  const auto fifo = fifo_schedule(inst, param.tie, /*seed=*/7);
  EftDispatcher eft(param.tie, /*seed=*/7);
  const auto eft_sched = run_dispatcher(inst, eft);

  EXPECT_TRUE(fifo.validate().ok());
  EXPECT_TRUE(eft_sched.validate().ok());
  expect_same_schedule(fifo, eft_sched);
  EXPECT_NEAR(fifo.max_flow(), eft_sched.max_flow(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, Prop1Equivalence,
    ::testing::Values(
        EquivalenceCase{1, 40, false, TieBreakKind::kMin, 1},
        EquivalenceCase{2, 60, false, TieBreakKind::kMin, 2},
        EquivalenceCase{3, 80, false, TieBreakKind::kMin, 3},
        EquivalenceCase{5, 100, false, TieBreakKind::kMin, 4},
        EquivalenceCase{8, 200, false, TieBreakKind::kMin, 5},
        EquivalenceCase{3, 80, false, TieBreakKind::kMax, 6},
        EquivalenceCase{5, 120, false, TieBreakKind::kMax, 7},
        EquivalenceCase{4, 100, true, TieBreakKind::kMin, 8},
        EquivalenceCase{4, 100, true, TieBreakKind::kMax, 9},
        EquivalenceCase{6, 150, true, TieBreakKind::kMin, 10}));

// With the Rand tie-break, equality holds because FIFO and EFT consult the
// tie-break on the *same* candidate sets in the same order (Proposition 1's
// proof); seeding both identically must therefore reproduce the schedule.
TEST(Prop1Equivalence, RandTieBreakWithSharedSeed) {
  Rng rng(11);
  RandomInstanceOptions opts;
  opts.m = 4;
  opts.n = 120;
  const auto inst = random_instance(opts, rng);

  const auto fifo = fifo_schedule(inst, TieBreakKind::kRand, 1234);
  EftDispatcher eft(TieBreakKind::kRand, 1234);
  const auto eft_sched = run_dispatcher(inst, eft);
  expect_same_schedule(fifo, eft_sched);
}

// Simultaneous releases exercise the tie-break-heavy path: many machines
// idle at once, several tasks entering the queue together.
TEST(Prop1Equivalence, BurstArrivals) {
  std::vector<std::pair<double, double>> pairs;
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 7; ++i) {
      pairs.emplace_back(burst * 3.0, 1.0 + 0.5 * (i % 3));
    }
  }
  const auto inst = Instance::unrestricted(4, std::move(pairs));
  for (auto tie : {TieBreakKind::kMin, TieBreakKind::kMax}) {
    const auto fifo = fifo_schedule(inst, tie);
    EftDispatcher eft(tie);
    const auto eft_sched = run_dispatcher(inst, eft);
    expect_same_schedule(fifo, eft_sched);
  }
}

// Corollary of Proposition 1 + Theorem 1: both algorithms share the same
// Fmax, and it never exceeds (3 - 2/m) times the certified lower bound.
TEST(Prop1Equivalence, SharedFmaxWithinCompetitiveBound) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    RandomInstanceOptions opts;
    opts.m = 4;
    opts.n = 60;
    const auto inst = random_instance(opts, rng);
    const auto fifo = fifo_schedule(inst);
    EftDispatcher eft(TieBreakKind::kMin);
    const auto eft_sched = run_dispatcher(inst, eft);
    EXPECT_NEAR(fifo.max_flow(), eft_sched.max_flow(), 1e-9);
  }
}

}  // namespace
}  // namespace flowsched
