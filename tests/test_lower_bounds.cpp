#include "offline/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "offline/bruteforce.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

TEST(LowerBounds, PmaxBound) {
  const auto inst = Instance::unrestricted(3, {{0, 2}, {1, 7}, {2, 1}});
  EXPECT_DOUBLE_EQ(lb_pmax(inst), 7.0);
}

TEST(LowerBounds, VolumeBoundSimultaneousRelease) {
  // 4 unit tasks at t=0 on 2 machines: W/m = 2.
  const auto inst = Instance::unrestricted(2, {{0, 1}, {0, 1}, {0, 1}, {0, 1}});
  EXPECT_DOUBLE_EQ(lb_volume(inst), 2.0);
}

TEST(LowerBounds, VolumeBoundAccountsForSpread) {
  // Same work spread over time is a weaker bound.
  const auto inst = Instance::unrestricted(2, {{0, 1}, {1, 1}, {2, 1}, {3, 1}});
  EXPECT_LT(lb_volume(inst), 2.0);
  EXPECT_GE(lb_volume(inst), 0.5);
}

TEST(LowerBounds, RestrictedBoundSeesNarrowWindows) {
  // 4 unit tasks at t=0 all restricted to M0 on a 4-machine cluster: the
  // unrestricted volume bound gives 1, the restricted one gives 4.
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({.release = 0, .proc = 1, .eligible = ProcSet({0})});
  }
  const Instance inst(4, std::move(tasks));
  EXPECT_DOUBLE_EQ(lb_volume(inst), 1.0);
  EXPECT_DOUBLE_EQ(lb_volume_restricted(inst), 4.0);
}

TEST(LowerBounds, RestrictedSubsumesUnrestricted) {
  Rng rng(31);
  RandomInstanceOptions opts;
  opts.m = 4;
  opts.n = 25;
  opts.sets = RandomSets::kIntervals;
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = random_instance(opts, rng);
    EXPECT_GE(lb_volume_restricted(inst) + 1e-12, lb_volume(inst));
  }
}

// The defining property: every bound is a true lower bound on the exact
// optimum, verified against branch-and-bound on small instances.
TEST(LowerBounds, NeverExceedOptimum) {
  Rng rng(37);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 8;
  opts.sets = RandomSets::kArbitrary;
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = random_instance(opts, rng);
    const double opt = brute_force_opt_fmax(inst);
    EXPECT_LE(lb_pmax(inst), opt + 1e-9) << "trial " << trial;
    EXPECT_LE(lb_volume(inst), opt + 1e-9) << "trial " << trial;
    EXPECT_LE(lb_volume_restricted(inst), opt + 1e-9) << "trial " << trial;
    EXPECT_LE(opt_lower_bound(inst), opt + 1e-9) << "trial " << trial;
  }
}

TEST(LowerBounds, CombinedBoundTakesMax) {
  const auto inst = Instance::unrestricted(2, {{0, 5}, {0, 1}, {0, 1}});
  EXPECT_GE(opt_lower_bound(inst), lb_pmax(inst));
  EXPECT_GE(opt_lower_bound(inst), lb_volume_restricted(inst));
}

}  // namespace
}  // namespace flowsched
