// Walker/Vose alias sampler (workload/alias.hpp): construction invariants,
// the exact per-index acceptance probabilities, the one-uniform-per-draw
// deviate budget, and distributional equivalence with the inverse-CDF
// ZipfSampler it replaced. Equivalence is chi-square, not draw-for-draw:
// the alias method maps the same uniforms to different (identically
// distributed) indices, so downstream code sees the same *stream positions*
// but not the same key values — docs/streaming.md spells this out.
#include "workload/alias.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace flowsched {
namespace {

TEST(Alias, RejectsDegenerateWeights) {
  EXPECT_THROW(AliasSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{1.0, -0.5}),
               std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

TEST(Alias, NormalizesWeights) {
  const AliasSampler sampler(std::vector<double>{2.0, 6.0});
  ASSERT_EQ(sampler.size(), 2u);
  EXPECT_NEAR(sampler.weights()[0], 0.25, 1e-15);
  EXPECT_NEAR(sampler.weights()[1], 0.75, 1e-15);
}

TEST(Alias, SingleColumnAlwaysSampled) {
  const AliasSampler sampler(std::vector<double>{3.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

// The acceptance test: summing each column's retained mass plus the mass
// aliased into it from other columns must reconstruct the input weights
// exactly — this is the defining invariant of a correct Vose build.
TEST(Alias, TableProbabilitiesReconstructWeights) {
  for (double s : {0.0, 0.5, 1.0, 2.5}) {
    const AliasSampler sampler(8, s);
    const auto expected = zipf_weights(8, s);
    for (std::size_t i = 0; i < sampler.size(); ++i) {
      EXPECT_NEAR(sampler.table_probability(i), expected[i], 1e-12)
          << "s=" << s << " i=" << i;
    }
  }
}

TEST(Alias, ZipfCtorMatchesZipfWeights) {
  const AliasSampler sampler(11, 1.3);
  const auto expected = zipf_weights(11, 1.3);
  ASSERT_EQ(sampler.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(sampler.weights()[i], expected[i]);
  }
}

TEST(Alias, DeterministicDrawSequence) {
  const AliasSampler sampler(16, 1.0);
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.sample(a), sampler.sample(b));
}

// Exactly one Rng::uniform() per draw — the deviate budget that keeps the
// arrival/service draws interleaved with key draws (kvstore/cluster_sim)
// at the same stream positions as the inverse-CDF sampler.
TEST(Alias, ConsumesExactlyOneUniformPerDraw) {
  const AliasSampler sampler(9, 0.8);
  Rng sampled(7), advanced(7);
  for (int i = 0; i < 500; ++i) {
    sampler.sample(sampled);
    advanced.uniform();
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(sampled.uniform(), advanced.uniform());
  }
}

// Chi-square goodness of fit of alias draws against the Zipf pmf, and the
// same statistic for the inverse-CDF ZipfSampler on the same budget: both
// must sit below the 99.9th-percentile critical value, i.e. the two
// samplers are statistically indistinguishable from the target law (and
// hence from each other).
TEST(Alias, ChiSquareEquivalenceWithZipfSampler) {
  const int m = 12;
  const double s = 1.0;
  const int draws = 200000;
  const auto expected = zipf_weights(m, s);

  const AliasSampler alias(m, s);
  const ZipfSampler inverse(m, s);
  std::vector<int> alias_counts(static_cast<std::size_t>(m), 0);
  std::vector<int> inverse_counts(static_cast<std::size_t>(m), 0);
  Rng ra(2026), ri(2026);
  for (int i = 0; i < draws; ++i) {
    ++alias_counts[alias.sample(ra)];
    ++inverse_counts[inverse.sample(ri)];
  }

  const auto chi2 = [&](const std::vector<int>& counts) {
    double stat = 0;
    for (int j = 0; j < m; ++j) {
      const double e = expected[static_cast<std::size_t>(j)] * draws;
      const double d = counts[static_cast<std::size_t>(j)] - e;
      stat += d * d / e;
    }
    return stat;
  };
  // chi2_{0.999, df=11} = 31.26.
  EXPECT_LT(chi2(alias_counts), 31.26);
  EXPECT_LT(chi2(inverse_counts), 31.26);
}

TEST(Alias, EmpiricalFrequenciesMatchSkewedWeights) {
  const AliasSampler sampler(std::vector<double>{8.0, 1.0, 1.0});
  Rng rng(5);
  const int draws = 100000;
  std::vector<int> counts(3, 0);
  for (int i = 0; i < draws; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / draws, 0.8, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / draws, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / draws, 0.1, 0.01);
}

}  // namespace
}  // namespace flowsched
