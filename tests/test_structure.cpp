#include "model/structure.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "workload/replication.hpp"

namespace flowsched {
namespace {

std::vector<ProcSet> disjoint_blocks() {
  return {ProcSet({0, 1}), ProcSet({2, 3}), ProcSet({0, 1})};
}

std::vector<ProcSet> inclusive_chain() {
  return {ProcSet({0}), ProcSet({0, 1}), ProcSet({0, 1, 2, 3})};
}

std::vector<ProcSet> nested_only() {
  return {ProcSet({0, 1}), ProcSet({0}), ProcSet({2, 3}), ProcSet({2})};
}

std::vector<ProcSet> general_family() {
  return {ProcSet({0, 1}), ProcSet({1, 2})};  // overlapping, not comparable
}

TEST(Structure, DisjointFamily) {
  EXPECT_TRUE(is_disjoint_family(disjoint_blocks()));
  EXPECT_FALSE(is_disjoint_family(inclusive_chain()));
  EXPECT_FALSE(is_disjoint_family(general_family()));
}

TEST(Structure, InclusiveFamily) {
  EXPECT_TRUE(is_inclusive_family(inclusive_chain()));
  EXPECT_FALSE(is_inclusive_family(disjoint_blocks()));
  EXPECT_FALSE(is_inclusive_family(general_family()));
}

TEST(Structure, NestedFamily) {
  EXPECT_TRUE(is_nested_family(nested_only()));
  // Figure 1: disjoint and inclusive are special cases of nested.
  EXPECT_TRUE(is_nested_family(disjoint_blocks()));
  EXPECT_TRUE(is_nested_family(inclusive_chain()));
  EXPECT_FALSE(is_nested_family(general_family()));
}

TEST(Structure, IntervalFamily) {
  EXPECT_TRUE(is_interval_family(general_family(), 4));
  EXPECT_TRUE(is_interval_family(disjoint_blocks(), 4));
  const std::vector<ProcSet> scattered{ProcSet({0, 2})};
  EXPECT_FALSE(is_interval_family(scattered, 4));
}

TEST(Structure, UniformSize) {
  int k = 0;
  EXPECT_TRUE(is_uniform_size_family(general_family(), &k));
  EXPECT_EQ(k, 2);
  EXPECT_FALSE(is_uniform_size_family(inclusive_chain(), &k));
  EXPECT_TRUE(is_uniform_size_family({}, &k));
  EXPECT_EQ(k, 0);
}

TEST(Structure, ClassifyMostSpecific) {
  EXPECT_EQ(classify_family(disjoint_blocks(), 4).most_specific(), "disjoint");
  EXPECT_EQ(classify_family(inclusive_chain(), 4).most_specific(), "inclusive");
  EXPECT_EQ(classify_family(nested_only(), 4).most_specific(), "nested");
  EXPECT_EQ(classify_family(general_family(), 4).most_specific(), "interval");
  // {0,2} and {1,3} intersect with nothing -> still disjoint; a truly
  // general family needs overlapping, incomparable, non-interval sets.
  const std::vector<ProcSet> scattered{ProcSet({0, 2}), ProcSet({0, 3})};
  EXPECT_EQ(classify_family(scattered, 4).most_specific(), "general");
}

TEST(Structure, ClassifySetsHierarchyFlags) {
  const auto flags = classify_family(disjoint_blocks(), 4);
  EXPECT_TRUE(flags.disjoint);
  EXPECT_TRUE(flags.nested);    // implied by disjoint
  EXPECT_TRUE(flags.interval);  // blocks are contiguous here
  EXPECT_FALSE(flags.inclusive);
}

TEST(Structure, DisjointReplicationIsDisjointAndInterval) {
  const auto sets = replica_sets(ReplicationStrategy::kDisjoint, 3, 15);
  EXPECT_TRUE(is_disjoint_family(sets));
  EXPECT_TRUE(is_interval_family(sets, 15));
}

TEST(Structure, OverlappingReplicationIsIntervalOnly) {
  const auto sets = replica_sets(ReplicationStrategy::kOverlapping, 3, 15);
  EXPECT_TRUE(is_interval_family(sets, 15));
  EXPECT_FALSE(is_nested_family(sets));
  EXPECT_FALSE(is_disjoint_family(sets));
  EXPECT_FALSE(is_inclusive_family(sets));
}

TEST(Structure, SingletonFamilyIsEverything) {
  const std::vector<ProcSet> one{ProcSet({1, 2})};
  const auto flags = classify_family(one, 4);
  EXPECT_TRUE(flags.disjoint);
  EXPECT_TRUE(flags.inclusive);
  EXPECT_TRUE(flags.nested);
  EXPECT_TRUE(flags.interval);
}

}  // namespace
}  // namespace flowsched
