#include "lp/maxload.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workload/popularity.hpp"
#include "workload/replication.hpp"
#include "workload/zipf.hpp"

namespace flowsched {
namespace {

TEST(MaxLoad, UniformPopularityFullReplicationSaturates) {
  // k = m: any machine serves any key; max lambda = m.
  const int m = 6;
  const auto pop = zipf_weights(m, 0.0);
  const auto sets = replica_sets(ReplicationStrategy::kOverlapping, m, m);
  const auto result = max_load_lp(pop, sets);
  EXPECT_NEAR(result.lambda, m, 1e-6);
}

TEST(MaxLoad, UniformPopularityNoReplication) {
  // Each machine gets 1/m of the load, saturating at lambda = m.
  const int m = 5;
  const auto pop = zipf_weights(m, 0.0);
  const auto sets = replica_sets(ReplicationStrategy::kNone, 1, m);
  EXPECT_NEAR(max_load_lp(pop, sets).lambda, m, 1e-6);
  EXPECT_NEAR(max_load_unreplicated(pop), m, 1e-9);
}

TEST(MaxLoad, SkewedPopularityNoReplicationBottleneck) {
  // P = (1/2, 1/4, 1/4): lambda <= 1 / 0.5 = 2.
  const std::vector<double> pop{0.5, 0.25, 0.25};
  const auto sets = replica_sets(ReplicationStrategy::kNone, 1, 3);
  EXPECT_NEAR(max_load_lp(pop, sets).lambda, 2.0, 1e-6);
  EXPECT_NEAR(max_load_unreplicated(pop), 2.0, 1e-12);
}

TEST(MaxLoad, ReplicationLiftsBottleneck) {
  // Hot machine 0 can shed load to its replicas.
  const std::vector<double> pop{0.5, 0.25, 0.125, 0.125};
  const auto none = replica_sets(ReplicationStrategy::kNone, 1, 4);
  const auto ring = replica_sets(ReplicationStrategy::kOverlapping, 2, 4);
  const double lam_none = max_load_lp(pop, none).lambda;
  const double lam_ring = max_load_lp(pop, ring).lambda;
  EXPECT_GT(lam_ring, lam_none + 0.5);
}

TEST(MaxLoad, TransferMatrixIsConsistent) {
  const std::vector<double> pop{0.5, 0.3, 0.2};
  const auto sets = replica_sets(ReplicationStrategy::kOverlapping, 2, 3);
  const auto result = max_load_lp(pop, sets);
  // (15b): column sums equal lambda * P(E_j).
  for (int j = 0; j < 3; ++j) {
    double col = 0;
    for (int i = 0; i < 3; ++i) col += result.transfer[i][j];
    EXPECT_NEAR(col, result.lambda * pop[j], 1e-6);
  }
  // (15c): row sums at most 1.
  for (int i = 0; i < 3; ++i) {
    double row = 0;
    for (int j = 0; j < 3; ++j) row += result.transfer[i][j];
    EXPECT_LE(row, 1.0 + 1e-6);
  }
  // (15d): transfers only within replica sets.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (!sets[j].contains(i)) EXPECT_EQ(result.transfer[i][j], 0.0);
    }
  }
}

// Cross-validation: the simplex LP and the max-flow bisection must agree on
// random popularity/replication combinations.
struct CrossCase {
  int m;
  int k;
  double s;
  ReplicationStrategy strategy;
};

class MaxLoadCross : public ::testing::TestWithParam<CrossCase> {};

TEST_P(MaxLoadCross, SimplexAgreesWithFlowBisection) {
  const auto c = GetParam();
  Rng rng(1000 + c.m * 17 + c.k);
  const auto pop = make_popularity(PopularityCase::kShuffled, c.m, c.s, rng);
  const auto sets = replica_sets(c.strategy, c.k, c.m);
  const double lp = max_load_lp(pop, sets).lambda;
  const double flow = max_load_flow(pop, sets);
  EXPECT_NEAR(lp, flow, 1e-6) << "m=" << c.m << " k=" << c.k << " s=" << c.s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaxLoadCross,
    ::testing::Values(
        CrossCase{5, 2, 1.0, ReplicationStrategy::kOverlapping},
        CrossCase{5, 2, 1.0, ReplicationStrategy::kDisjoint},
        CrossCase{8, 3, 0.5, ReplicationStrategy::kOverlapping},
        CrossCase{8, 3, 0.5, ReplicationStrategy::kDisjoint},
        CrossCase{15, 3, 1.0, ReplicationStrategy::kOverlapping},
        CrossCase{15, 3, 1.0, ReplicationStrategy::kDisjoint},
        CrossCase{15, 6, 2.0, ReplicationStrategy::kOverlapping},
        CrossCase{15, 6, 2.0, ReplicationStrategy::kDisjoint},
        CrossCase{15, 15, 3.0, ReplicationStrategy::kOverlapping},
        CrossCase{7, 4, 1.5, ReplicationStrategy::kDisjoint}));

TEST(MaxLoad, OverlappingDominatesDisjoint) {
  // The paper's central experimental claim (Figure 10b): overlapping
  // intervals never sustain less load than disjoint ones.
  Rng rng(77);
  const int m = 15;
  for (double s : {0.5, 1.0, 1.5, 2.0}) {
    const auto pop = make_popularity(PopularityCase::kShuffled, m, s, rng);
    for (int k : {2, 3, 5}) {
      const double over =
          max_load_lp(pop, replica_sets(ReplicationStrategy::kOverlapping, k, m))
              .lambda;
      const double disj =
          max_load_lp(pop, replica_sets(ReplicationStrategy::kDisjoint, k, m))
              .lambda;
      EXPECT_GE(over, disj - 1e-6) << "s=" << s << " k=" << k;
    }
  }
}

TEST(MaxLoad, NoBiasMeansNoStrategyDifference) {
  // Figure 10: at s = 0 both strategies saturate at 100%.
  const int m = 12;
  const auto pop = zipf_weights(m, 0.0);
  for (int k : {2, 3, 4}) {
    const double over =
        max_load_lp(pop, replica_sets(ReplicationStrategy::kOverlapping, k, m))
            .lambda;
    const double disj =
        max_load_lp(pop, replica_sets(ReplicationStrategy::kDisjoint, k, m))
            .lambda;
    EXPECT_NEAR(over, m, 1e-6);
    EXPECT_NEAR(disj, m, 1e-6);
  }
}

TEST(MaxLoad, WarmSweepMatchesColdSolvesAndOracles) {
  // A MaxLoadSolver chained over a popularity sweep (the Fig. 10 shape:
  // fixed replica sets, s-ascending popularity vectors, each solve
  // warm-started from the previous basis) must match one-shot cold solves,
  // the dense tableau oracle, and the flow bisection at every cell.
  const int m = 12;
  for (auto strategy :
       {ReplicationStrategy::kOverlapping, ReplicationStrategy::kDisjoint}) {
    const auto sets = replica_sets(strategy, 3, m);
    MaxLoadSolver solver(sets);
    for (double s : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5}) {
      Rng rng(4242);
      const auto pop = make_popularity(PopularityCase::kShuffled, m, s, rng);
      const double warm = solver.solve_lambda(pop);
      const double cold = max_load_lp(pop, sets).lambda;
      const double oracle = max_load_lp_tableau(pop, sets).lambda;
      const double flow = max_load_flow(pop, sets);
      EXPECT_NEAR(warm, cold, 1e-7) << "s=" << s;
      EXPECT_NEAR(warm, oracle, 1e-7) << "s=" << s;
      EXPECT_NEAR(warm, flow, 1e-6) << "s=" << s;
    }
  }
}

TEST(MaxLoad, SolverFullResultMatchesOneShot) {
  const std::vector<double> pop{0.4, 0.3, 0.2, 0.1};
  const auto sets = replica_sets(ReplicationStrategy::kOverlapping, 2, 4);
  MaxLoadSolver solver(sets);
  const auto warm = solver.solve(pop);
  const auto cold = max_load_lp(pop, sets);
  EXPECT_NEAR(warm.lambda, cold.lambda, 1e-9);
  for (int j = 0; j < 4; ++j) {
    double col = 0;
    for (int i = 0; i < 4; ++i) col += warm.transfer[i][j];
    EXPECT_NEAR(col, warm.lambda * pop[j], 1e-6);
  }
}

TEST(MaxLoad, InputValidation) {
  EXPECT_THROW(max_load_lp({}, {}), std::invalid_argument);
  EXPECT_THROW(max_load_lp({0.5, 0.5}, {ProcSet({0})}), std::invalid_argument);
  EXPECT_THROW(max_load_lp({0.5, -0.5}, replica_sets(ReplicationStrategy::kNone, 1, 2)),
               std::invalid_argument);
  EXPECT_THROW(max_load_unreplicated({}), std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
