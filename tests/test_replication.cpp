#include "workload/replication.hpp"

#include <gtest/gtest.h>

#include "model/structure.hpp"

namespace flowsched {
namespace {

TEST(Replication, NoneIsSingleton) {
  EXPECT_EQ(replica_set(ReplicationStrategy::kNone, 3, 1, 6),
            ProcSet::single(3));
}

TEST(Replication, OverlappingMatchesFigure9) {
  // Figure 9: m=6, k=3. A task on M3 (0-based owner 2) gets {M3,M4,M5}.
  EXPECT_EQ(replica_set(ReplicationStrategy::kOverlapping, 2, 3, 6),
            ProcSet({2, 3, 4}));
  // Owner M5 (0-based 4): {M5, M6, M1} wraps the ring.
  EXPECT_EQ(replica_set(ReplicationStrategy::kOverlapping, 4, 3, 6),
            ProcSet({4, 5, 0}));
  // Owner M6 (0-based 5): {M6, M1, M2}.
  EXPECT_EQ(replica_set(ReplicationStrategy::kOverlapping, 5, 3, 6),
            ProcSet({5, 0, 1}));
}

TEST(Replication, DisjointMatchesFigure9) {
  // Figure 9: m=6, k=3, blocks {M1..M3} and {M4..M6}. A task on M3
  // (0-based 2) gets {M1,M2,M3}.
  EXPECT_EQ(replica_set(ReplicationStrategy::kDisjoint, 2, 3, 6),
            ProcSet({0, 1, 2}));
  EXPECT_EQ(replica_set(ReplicationStrategy::kDisjoint, 3, 3, 6),
            ProcSet({3, 4, 5}));
}

TEST(Replication, DisjointShortLastBlock) {
  // m=7, k=3: blocks {0,1,2}, {3,4,5}, {6}.
  EXPECT_EQ(replica_set(ReplicationStrategy::kDisjoint, 6, 3, 7), ProcSet({6}));
  EXPECT_EQ(replica_set(ReplicationStrategy::kDisjoint, 5, 3, 7),
            ProcSet({3, 4, 5}));
}

TEST(Replication, EveryOwnerIsInItsReplicaSet) {
  for (auto strategy : {ReplicationStrategy::kOverlapping,
                        ReplicationStrategy::kDisjoint,
                        ReplicationStrategy::kNone}) {
    const int k = strategy == ReplicationStrategy::kNone ? 1 : 3;
    for (int u = 0; u < 10; ++u) {
      EXPECT_TRUE(replica_set(strategy, u, k, 10).contains(u))
          << to_string(strategy) << " owner " << u;
    }
  }
}

TEST(Replication, SizesAreK) {
  for (int u = 0; u < 15; ++u) {
    EXPECT_EQ(replica_set(ReplicationStrategy::kOverlapping, u, 3, 15).size(), 3);
  }
  // Disjoint with k | m: every block full size.
  for (int u = 0; u < 15; ++u) {
    EXPECT_EQ(replica_set(ReplicationStrategy::kDisjoint, u, 3, 15).size(), 3);
  }
}

TEST(Replication, OverlappingSetsAreDistinctPerOwner) {
  const auto sets = replica_sets(ReplicationStrategy::kOverlapping, 3, 15);
  for (std::size_t a = 0; a < sets.size(); ++a) {
    for (std::size_t b = a + 1; b < sets.size(); ++b) {
      EXPECT_FALSE(sets[a] == sets[b]) << a << " vs " << b;
    }
  }
}

TEST(Replication, DisjointFamilyIsDisjoint) {
  EXPECT_TRUE(is_disjoint_family(replica_sets(ReplicationStrategy::kDisjoint, 4, 15)));
  EXPECT_TRUE(is_disjoint_family(replica_sets(ReplicationStrategy::kDisjoint, 3, 7)));
}

TEST(Replication, KEqualsMFullReplication) {
  const auto over = replica_set(ReplicationStrategy::kOverlapping, 4, 6, 6);
  const auto disj = replica_set(ReplicationStrategy::kDisjoint, 4, 6, 6);
  EXPECT_EQ(over, ProcSet::all(6));
  EXPECT_EQ(disj, ProcSet::all(6));
}

TEST(Replication, SpreadSpacesReplicasApart) {
  // m=15, k=3: stride 5 would tile the ring into a disjoint partition, so
  // the construction bumps it to 6 -> {u, u+6, u+12}.
  EXPECT_EQ(replica_set(ReplicationStrategy::kSpread, 0, 3, 15),
            ProcSet({0, 6, 12}));
  EXPECT_EQ(replica_set(ReplicationStrategy::kSpread, 12, 3, 15),
            ProcSet({12, 3, 9}));
  // m=16, k=3: stride 5 does not tile; kept as is.
  EXPECT_EQ(replica_set(ReplicationStrategy::kSpread, 0, 3, 16),
            ProcSet({0, 5, 10}));
}

TEST(Replication, SpreadIsNotAPartition) {
  // The whole point of the stride bump: the family must overlap (m distinct
  // sets), not collapse into disjoint groups.
  const auto sets = replica_sets(ReplicationStrategy::kSpread, 3, 15);
  EXPECT_FALSE(is_disjoint_family(sets));
  for (std::size_t a = 0; a < sets.size(); ++a) {
    for (std::size_t b = a + 1; b < sets.size(); ++b) {
      EXPECT_FALSE(sets[a] == sets[b]) << a << " vs " << b;
    }
  }
}

TEST(Replication, SpreadAlwaysSizeK) {
  for (int m : {6, 7, 15}) {
    for (int k = 1; k <= m; ++k) {
      for (int u = 0; u < m; ++u) {
        const auto set = replica_set(ReplicationStrategy::kSpread, u, k, m);
        EXPECT_EQ(set.size(), k) << "m=" << m << " k=" << k << " u=" << u;
        EXPECT_TRUE(set.contains(u));
        EXPECT_TRUE(set.within(m));
      }
    }
  }
}

TEST(Replication, SpreadIsNotAnIntervalFamily) {
  const auto sets = replica_sets(ReplicationStrategy::kSpread, 3, 15);
  EXPECT_FALSE(is_interval_family(sets, 15));
}

TEST(Replication, RejectsBadArguments) {
  EXPECT_THROW(replica_set(ReplicationStrategy::kOverlapping, -1, 3, 6),
               std::invalid_argument);
  EXPECT_THROW(replica_set(ReplicationStrategy::kOverlapping, 6, 3, 6),
               std::invalid_argument);
  EXPECT_THROW(replica_set(ReplicationStrategy::kOverlapping, 0, 0, 6),
               std::invalid_argument);
  EXPECT_THROW(replica_set(ReplicationStrategy::kOverlapping, 0, 7, 6),
               std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
