// The invariant-audit subsystem (src/check/): auditor detection power,
// generator structure guarantees, shrinker minimality, and the
// differential fuzzer's determinism / fault-injection contract.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "check/fuzz.hpp"
#include "check/gen.hpp"
#include "check/shrink.hpp"
#include "model/structure.hpp"
#include "sched/dispatchers.hpp"
#include "sched/engine.hpp"
#include "sched/fifo.hpp"
#include "util/rng.hpp"

namespace flowsched {
namespace {

Instance small_restricted() {
  std::vector<Task> tasks = {
      {0.0, 2.0, ProcSet({0, 1})}, {0.0, 1.0, ProcSet({1, 2})},
      {0.5, 1.5, ProcSet({0})},    {1.0, 1.0, ProcSet({1, 2})},
      {2.0, 2.0, ProcSet({0, 1, 2})},
  };
  return Instance(3, std::move(tasks));
}

bool has_tag(const std::vector<std::string>& violations,
             const std::string& tag) {
  for (const std::string& v : violations) {
    if (v.find(tag) != std::string::npos) return true;
  }
  return false;
}

// --- auditor: clean runs stay clean ---------------------------------------

TEST(InvariantAuditor, CleanOnEveryPolicy) {
  const Instance inst = small_restricted();
  AuditConfig config;
  config.bound_oracles = true;
  for (const std::string& policy : fuzz_policies()) {
    SCOPED_TRACE(policy);
    EXPECT_TRUE(replay_corpus_instance(inst).empty());
  }
}

TEST(InvariantAuditor, CleanOnFifoUnrestricted) {
  const Instance inst = Instance::unrestricted(
      3, {{0, 1}, {0, 1}, {0, 2}, {1, 1}, {1, 3}, {2, 1}});
  AuditConfig config;
  config.bound_oracles = true;
  InvariantAuditor auditor(config);
  fifo_schedule(inst, TieBreakKind::kMin, 0, &auditor);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  EXPECT_EQ(auditor.runs(), 1);
}

// --- auditor: corrupted schedules are flagged ------------------------------

TEST(InvariantAuditor, FlagsEligibilityViolation) {
  const Instance inst = small_restricted();
  Schedule sched(inst);
  // Task 2's set is {M1} only; put it on machine 2 (and keep the rest
  // legal by spreading tasks over disjoint time ranges).
  sched.assign(0, 0, 0.0);
  sched.assign(1, 1, 0.0);
  sched.assign(2, 2, 10.0);
  sched.assign(3, 1, 10.0);
  sched.assign(4, 0, 10.0);
  const auto violations = audit_schedule(sched, "replay");
  EXPECT_TRUE(has_tag(violations, "[eligibility]")) << sched.instance().n();
}

TEST(InvariantAuditor, FlagsDoubleBooking) {
  const Instance inst = Instance::unrestricted(2, {{0, 2}, {0, 2}, {0, 2}});
  Schedule sched(inst);
  sched.assign(0, 0, 0.0);
  sched.assign(1, 0, 1.0);  // overlaps task 0 on machine 1
  sched.assign(2, 1, 0.0);
  const auto violations = audit_schedule(sched, "replay");
  EXPECT_TRUE(has_tag(violations, "[overlap]"));
}

TEST(InvariantAuditor, FlagsStartBeforeRelease) {
  const Instance inst = Instance::unrestricted(2, {{1.0, 1}, {1.0, 1}});
  Schedule sched(inst);
  sched.assign(0, 0, 0.5);  // starts before its release
  sched.assign(1, 1, 1.0);
  const auto violations = audit_schedule(sched, "replay");
  EXPECT_TRUE(has_tag(violations, "[accounting]"));
}

TEST(InvariantAuditor, FlagsFifoOrderBreach) {
  // Unrestricted instance labeled FIFO, but the later release starts first.
  const Instance inst = Instance::unrestricted(1, {{0, 1}, {1, 1}});
  Schedule sched(inst);
  sched.assign(0, 0, 2.0);
  sched.assign(1, 0, 1.0);
  const auto violations = audit_schedule(sched, "FIFO");
  EXPECT_TRUE(has_tag(violations, "[fifo-order]"));
}

TEST(InvariantAuditor, FlagsUnforcedIdleness) {
  // Machine idles at t=0 while both tasks wait until t=5: work conservation
  // fails for a FIFO-class engine.
  const Instance inst = Instance::unrestricted(1, {{0, 1}, {0, 1}});
  Schedule sched(inst);
  sched.assign(0, 0, 5.0);
  sched.assign(1, 0, 6.0);
  const auto violations = audit_schedule(sched, "FIFO");
  EXPECT_TRUE(has_tag(violations, "[work-conservation]"));
}

// --- generators: families land in the advertised class ---------------------

std::vector<ProcSet> distinct_sets(const Instance& inst) {
  std::set<std::vector<int>> seen;
  std::vector<ProcSet> family;
  for (const Task& t : inst.tasks()) {
    ProcSet s = t.eligible;
    if (s.empty()) {  // empty means "all machines"
      std::vector<int> all(static_cast<std::size_t>(inst.m()));
      for (int j = 0; j < inst.m(); ++j) all[static_cast<std::size_t>(j)] = j;
      s = ProcSet(std::move(all));
    }
    if (seen.insert(s.machines()).second) family.push_back(std::move(s));
  }
  return family;
}

TEST(StructuredGenerator, FamiliesMatchStructure) {
  StructuredInstanceOptions opts;
  for (FuzzStructure structure : kAllFuzzStructures) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      Rng rng(seed * 977 + 13);
      const Instance inst = random_structured_instance(structure, opts, rng);
      ASSERT_GE(inst.n(), 1);
      const std::vector<ProcSet> family = distinct_sets(inst);
      SCOPED_TRACE(to_string(structure) + " seed " + std::to_string(seed));
      switch (structure) {
        case FuzzStructure::kInclusive:
          EXPECT_TRUE(is_inclusive_family(family));
          break;
        case FuzzStructure::kNested:
          EXPECT_TRUE(is_nested_family(family));
          break;
        case FuzzStructure::kKSize:
          EXPECT_TRUE(is_uniform_size_family(family));
          break;
        case FuzzStructure::kInterval:
        case FuzzStructure::kAdversary:
          EXPECT_TRUE(is_interval_family(family, inst.m()));
          break;
      }
    }
  }
}

TEST(StructuredGenerator, UnitModeDrawsUnitTasks) {
  StructuredInstanceOptions opts;
  opts.unit_tasks = true;
  Rng rng(7);
  const Instance inst =
      random_structured_instance(FuzzStructure::kKSize, opts, rng);
  EXPECT_TRUE(inst.unit_tasks());
}

// --- shrinker ---------------------------------------------------------------

TEST(Shrinker, MinimizesToPredicateCore) {
  StructuredInstanceOptions opts;
  opts.min_n = 20;
  opts.max_n = 30;
  Rng rng(11);
  const Instance inst =
      random_structured_instance(FuzzStructure::kKSize, opts, rng);
  // "At least two tasks and at least one long task" — the 2-task core.
  const FailurePredicate pred = [](const Instance& cand) {
    if (cand.n() < 2) return false;
    for (const Task& t : cand.tasks()) {
      if (t.proc > 1.5) return true;
    }
    return false;
  };
  ASSERT_TRUE(pred(inst));
  ShrinkStats stats;
  const Instance minimized = shrink_instance(inst, pred, 4000, &stats);
  EXPECT_TRUE(pred(minimized));
  EXPECT_EQ(minimized.n(), 2);
  EXPECT_EQ(stats.tasks_before, inst.n());
  EXPECT_EQ(stats.tasks_after, 2);
  EXPECT_GT(stats.predicate_calls, 0);
}

TEST(Shrinker, ReturnsInputWhenPredicateDoesNotHold) {
  const Instance inst = small_restricted();
  const Instance out =
      shrink_instance(inst, [](const Instance&) { return false; });
  EXPECT_EQ(out.n(), inst.n());
}

// --- fault injection: the planted EFT bug is caught and shrunk --------------

TEST(FaultyEft, ViolatesWorkConservationDirectly) {
  // Two simultaneous unit tasks, two machines: the off-by-one cursor calls
  // the busy machine idle and stacks both tasks on M1 while M2 sits empty.
  const Instance inst = Instance::unrestricted(2, {{0, 1}, {0, 1}});
  FaultyEftDispatcher faulty;
  InvariantAuditor auditor;
  run_dispatcher(inst, faulty, auditor);
  EXPECT_FALSE(auditor.ok());
  EXPECT_TRUE(has_tag(auditor.violations(), "[work-conservation]"))
      << auditor.report();
}

TEST(FaultyEft, FuzzerCatchesAndShrinksToAtMostSixTasks) {
  FuzzConfig config;
  config.seed = 42;
  config.runs = 8;
  config.threads = 1;
  config.inject_bug = true;
  const FuzzReport report = run_fuzz(config);
  bool caught = false;
  for (const FuzzFinding& f : report.findings) {
    if (f.policy != "EFT-Min") continue;
    caught = true;
    EXPECT_LE(f.shrunk_n, 6) << f.check;
    EXPECT_FALSE(f.instance_text.empty());
  }
  EXPECT_TRUE(caught) << report.summary();
}

// --- fuzzer: determinism and clean seeds ------------------------------------

TEST(Fuzz, CleanSeededCampaign) {
  FuzzConfig config;
  config.seed = 5;
  config.runs = 30;
  config.threads = 1;
  const FuzzReport report = run_fuzz(config);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.runs, 30);
  EXPECT_GT(report.schedules, 30 * 8);  // every policy ran on every instance
  EXPECT_GT(report.lp_checks, 0);
}

TEST(Fuzz, ReportByteIdenticalAcrossThreadCounts) {
  FuzzConfig config;
  config.seed = 7;
  config.runs = 24;
  config.threads = 1;
  const std::string serial = run_fuzz(config).summary();
  config.threads = 3;
  const std::string parallel = run_fuzz(config).summary();
  EXPECT_EQ(serial, parallel);
}

TEST(Fuzz, SingleStructureCampaign) {
  FuzzConfig config;
  config.seed = 3;
  config.runs = 10;
  config.threads = 1;
  config.structures = {FuzzStructure::kAdversary};
  const FuzzReport report = run_fuzz(config);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace flowsched
