#include "offline/unit_optimal.hpp"

#include <gtest/gtest.h>

#include "offline/bruteforce.hpp"
#include "sched/engine.hpp"
#include "sched/fifo.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

Instance unit_instance(int m, std::vector<std::pair<double, ProcSet>> specs) {
  std::vector<Task> tasks;
  for (auto& [r, set] : specs) {
    tasks.push_back({.release = r, .proc = 1.0, .eligible = std::move(set)});
  }
  return Instance(m, std::move(tasks));
}

TEST(UnitOptimal, SingleTask) {
  const auto inst = unit_instance(2, {{0.0, ProcSet({0})}});
  EXPECT_EQ(unit_optimal_fmax(inst), 1);
}

TEST(UnitOptimal, ContentionOnOneMachine) {
  // 3 tasks at time 0, all restricted to M0: flows 1, 2, 3.
  const auto inst = unit_instance(
      2, {{0.0, ProcSet({0})}, {0.0, ProcSet({0})}, {0.0, ProcSet({0})}});
  EXPECT_EQ(unit_optimal_fmax(inst), 3);
}

TEST(UnitOptimal, RestrictionForcesWaiting) {
  // Two tasks on {M0}, one on {M0, M1}: OPT puts the flexible one on M1.
  const auto inst = unit_instance(
      2, {{0.0, ProcSet({0})}, {0.0, ProcSet({0})}, {0.0, ProcSet({0, 1})}});
  EXPECT_EQ(unit_optimal_fmax(inst), 2);
}

TEST(UnitOptimal, ScheduleRealizesOptimum) {
  Rng rng(3);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 12;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.max_release = 6.0;
  opts.sets = RandomSets::kArbitrary;
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = random_instance(opts, rng);
    const int opt = unit_optimal_fmax(inst);
    const auto sched = unit_optimal_schedule(inst);
    EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
    EXPECT_NEAR(sched.max_flow(), opt, 1e-9);
  }
}

TEST(UnitOptimal, MatchesBruteForceOnRandomInstances) {
  Rng rng(11);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 9;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.max_release = 4.0;
  opts.sets = RandomSets::kIntervals;
  for (int trial = 0; trial < 15; ++trial) {
    const auto inst = random_instance(opts, rng);
    EXPECT_NEAR(brute_force_opt_fmax(inst), unit_optimal_fmax(inst), 1e-9);
  }
}

TEST(UnitOptimal, FeasibilityIsMonotoneInF) {
  Rng rng(17);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 10;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.sets = RandomSets::kArbitrary;
  const auto inst = random_instance(opts, rng);
  const int opt = unit_optimal_fmax(inst);
  EXPECT_FALSE(unit_fmax_feasible(inst, opt - 1));
  EXPECT_TRUE(unit_fmax_feasible(inst, opt));
  EXPECT_TRUE(unit_fmax_feasible(inst, opt + 1));
}

TEST(UnitOptimal, RejectsNonUnitOrFractionalReleases) {
  const auto bad_proc = Instance::unrestricted(2, {{0.0, 2.0}});
  EXPECT_THROW(unit_optimal_fmax(bad_proc), std::invalid_argument);
  const auto bad_release = Instance::unrestricted(2, {{0.5, 1.0}});
  EXPECT_THROW(unit_optimal_fmax(bad_release), std::invalid_argument);
}

// Theorem 2: FIFO solves P|online-r_i, p_i = p|Fmax to optimality. With
// p = 1 and integer releases we can check against the exact optimum.
TEST(UnitOptimal, Theorem2FifoOptimalForUnitTasks) {
  Rng rng(23);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 14;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.max_release = 5.0;
  opts.sets = RandomSets::kUnrestricted;
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = random_instance(opts, rng);
    const auto fifo = fifo_schedule(inst);
    EXPECT_NEAR(fifo.max_flow(), unit_optimal_fmax(inst), 1e-9)
        << "trial " << trial;
  }
}

// EFT (== FIFO) is likewise optimal on unit tasks without restrictions, but
// NOT with restrictions: exhibit an instance where EFT-Min is strictly
// suboptimal.
TEST(UnitOptimal, EftSuboptimalUnderRestrictions) {
  // At t=0: one task on {M0,M1} (EFT-Min -> M0), then two tasks on {M0}.
  // EFT ends with Fmax = 3; OPT = 2 (flexible task to M1).
  const auto inst = unit_instance(
      2, {{0.0, ProcSet({0, 1})}, {0.0, ProcSet({0})}, {0.0, ProcSet({0})}});
  EftDispatcher eft(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, eft);
  EXPECT_DOUBLE_EQ(sched.max_flow(), 3.0);
  EXPECT_EQ(unit_optimal_fmax(inst), 2);
}

}  // namespace
}  // namespace flowsched
