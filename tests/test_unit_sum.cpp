#include "offline/unit_sum.hpp"

#include <gtest/gtest.h>

#include "offline/mincost_matching.hpp"
#include "sched/engine.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

// ------------------------------------------------------ MinCostMatching

TEST(MinCostMatching, PicksCheapAssignment) {
  MinCostMatching m(2, 2);
  m.add_edge(0, 0, 1.0);
  m.add_edge(0, 1, 10.0);
  m.add_edge(1, 0, 10.0);
  m.add_edge(1, 1, 1.0);
  const auto r = m.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.total_cost, 2.0);
  EXPECT_EQ(r.match[0], 0);
  EXPECT_EQ(r.match[1], 1);
}

TEST(MinCostMatching, TakesExpensiveEdgeWhenForced) {
  // Greedy would give 0->0 (cost 0) and strand 1; the optimum reroutes.
  MinCostMatching m(2, 2);
  m.add_edge(0, 0, 0.0);
  m.add_edge(0, 1, 5.0);
  m.add_edge(1, 0, 1.0);
  const auto r = m.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.total_cost, 6.0);
  EXPECT_EQ(r.match[0], 1);
  EXPECT_EQ(r.match[1], 0);
}

TEST(MinCostMatching, ReportsInfeasibility) {
  MinCostMatching m(2, 2);
  m.add_edge(0, 0, 1.0);
  m.add_edge(1, 0, 1.0);  // both want the same right node
  const auto r = m.solve();
  EXPECT_FALSE(r.feasible);
}

TEST(MinCostMatching, RejectsNegativeCostAndBadNodes) {
  MinCostMatching m(1, 1);
  EXPECT_THROW(m.add_edge(0, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(m.add_edge(0, 2, 1.0), std::invalid_argument);
}

TEST(MinCostMatching, MatchesBruteForceOnRandomCosts) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 5;
    std::vector<std::vector<double>> cost(n, std::vector<double>(n));
    MinCostMatching m(n, n);
    for (int l = 0; l < n; ++l) {
      for (int r = 0; r < n; ++r) {
        cost[static_cast<std::size_t>(l)][static_cast<std::size_t>(r)] =
            rng.uniform(0.0, 10.0);
        m.add_edge(l, r, cost[static_cast<std::size_t>(l)][static_cast<std::size_t>(r)]);
      }
    }
    // Brute force over all 5! permutations.
    std::vector<int> perm{0, 1, 2, 3, 4};
    double best = 1e18;
    do {
      double total = 0;
      for (int l = 0; l < n; ++l) {
        total += cost[static_cast<std::size_t>(l)][static_cast<std::size_t>(perm[static_cast<std::size_t>(l)])];
      }
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    const auto r = m.solve();
    ASSERT_TRUE(r.feasible);
    EXPECT_NEAR(r.total_cost, best, 1e-9) << "trial " << trial;
  }
}

// ------------------------------------------------------------- unit_sum

// Brute force: enumerate machine assignments; per machine, assign the
// release-sorted tasks greedily to the earliest free slots (optimal for
// unit tasks and a sum objective on one machine).
double brute_min_total_flow(const Instance& inst) {
  const int n = inst.n();
  const int m = inst.m();
  std::vector<int> choice(static_cast<std::size_t>(n), 0);
  double best = 1e18;
  while (true) {
    bool valid = true;
    for (int i = 0; i < n && valid; ++i) {
      valid = inst.task(i).eligible.contains(choice[static_cast<std::size_t>(i)]);
    }
    if (valid) {
      double total = 0;
      for (int j = 0; j < m; ++j) {
        double frontier = 0;
        for (int i = 0; i < n; ++i) {  // release-sorted order
          if (choice[static_cast<std::size_t>(i)] != j) continue;
          const double start = std::max(inst.task(i).release, frontier);
          frontier = start + 1;
          total += frontier - inst.task(i).release;
        }
      }
      best = std::min(best, total);
    }
    int pos = 0;
    while (pos < n && ++choice[static_cast<std::size_t>(pos)] == m) {
      choice[static_cast<std::size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

TEST(UnitSum, TotalFlowSimpleContention) {
  // 3 tasks at 0 on one machine: flows 1+2+3 = 6.
  std::vector<Task> tasks(3, Task{.release = 0, .proc = 1, .eligible = ProcSet({0})});
  const Instance inst(1, std::move(tasks));
  EXPECT_DOUBLE_EQ(unit_min_total_flow(inst), 6.0);
}

TEST(UnitSum, ScheduleRealizesObjective) {
  Rng rng(7);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 10;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.sets = RandomSets::kArbitrary;
  const auto inst = random_instance(opts, rng);
  Schedule sched(inst);
  const double objective = unit_min_total_flow(inst, &sched);
  EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
  double total = 0;
  for (int i = 0; i < inst.n(); ++i) total += sched.flow(i);
  EXPECT_NEAR(total, objective, 1e-9);
}

TEST(UnitSum, MatchesBruteForceTotalFlow) {
  Rng rng(11);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 7;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.max_release = 4.0;
  opts.sets = RandomSets::kIntervals;
  for (int trial = 0; trial < 8; ++trial) {
    const auto inst = random_instance(opts, rng);
    EXPECT_NEAR(unit_min_total_flow(inst), brute_min_total_flow(inst), 1e-9)
        << "trial " << trial;
  }
}

TEST(UnitSum, EftNeverBeatsTheExactMeanFlow) {
  Rng rng(13);
  RandomInstanceOptions opts;
  opts.m = 4;
  opts.n = 15;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.sets = RandomSets::kRingIntervals;
  for (int trial = 0; trial < 6; ++trial) {
    const auto inst = random_instance(opts, rng);
    EftDispatcher eft(TieBreakKind::kMin);
    const auto sched = run_dispatcher(inst, eft);
    double eft_total = 0;
    for (int i = 0; i < inst.n(); ++i) eft_total += sched.flow(i);
    EXPECT_GE(eft_total + 1e-9, unit_min_total_flow(inst)) << "trial " << trial;
  }
}

TEST(UnitSum, WeightedTardinessZeroWhenSlack) {
  // Deadlines far out: tardiness 0 regardless of weights.
  std::vector<DeadlineTask> tasks{
      DeadlineTask{Task{.release = 0, .proc = 1, .eligible = ProcSet({0})}, 100.0},
      DeadlineTask{Task{.release = 0, .proc = 1, .eligible = ProcSet({0})}, 100.0}};
  const DeadlineInstance inst(1, std::move(tasks));
  EXPECT_DOUBLE_EQ(unit_min_weighted_tardiness(inst, {5.0, 2.0}), 0.0);
}

TEST(UnitSum, WeightedTardinessPrefersHeavyTasks) {
  // Two tasks, one slot each at times 1 and 2; both due at 1. The heavy
  // task must take the early slot: cost = light_weight * 1.
  std::vector<DeadlineTask> tasks{
      DeadlineTask{Task{.release = 0, .proc = 1, .eligible = ProcSet({0})}, 1.0},
      DeadlineTask{Task{.release = 0, .proc = 1, .eligible = ProcSet({0})}, 1.0}};
  const DeadlineInstance inst(1, std::move(tasks));
  EXPECT_DOUBLE_EQ(unit_min_weighted_tardiness(inst, {10.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(unit_min_weighted_tardiness(inst, {1.0, 10.0}), 1.0);
}

TEST(UnitSum, TardinessWithDeadlineAtReleaseEqualsTotalFlow) {
  // d_i = r_i and w_i = 1: tardiness == flow for unit tasks (C_i > r_i
  // always), the sum-objective face of the paper's Fmax reduction.
  Rng rng(17);
  RandomInstanceOptions opts;
  opts.m = 2;
  opts.n = 8;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.sets = RandomSets::kArbitrary;
  for (int trial = 0; trial < 5; ++trial) {
    const auto plain = random_instance(opts, rng);
    const auto view = DeadlineInstance::fmax_view(plain);
    const std::vector<double> unit_weights(static_cast<std::size_t>(plain.n()), 1.0);
    EXPECT_NEAR(unit_min_weighted_tardiness(view, unit_weights),
                unit_min_total_flow(plain), 1e-9)
        << "trial " << trial;
  }
}

TEST(UnitSum, SparseReleasesStayCheap) {
  // Regression: a huge gap between releases must not blow the slot window
  // up (each task only needs n slots from its own release).
  std::vector<Task> tasks{
      {.release = 0, .proc = 1, .eligible = ProcSet({0})},
      {.release = 1000000, .proc = 1, .eligible = ProcSet({0})}};
  const Instance inst(2, std::move(tasks));
  EXPECT_DOUBLE_EQ(unit_min_total_flow(inst), 2.0);
}

TEST(UnitSum, RejectsBadInput) {
  const auto frac = Instance::unrestricted(2, {{0.5, 1.0}});
  EXPECT_THROW(unit_min_total_flow(frac), std::invalid_argument);
  const auto nonunit = Instance::unrestricted(2, {{0.0, 2.0}});
  EXPECT_THROW(unit_min_total_flow(nonunit), std::invalid_argument);
  std::vector<DeadlineTask> tasks{
      DeadlineTask{Task{.release = 0, .proc = 1, .eligible = ProcSet({0})}, 1.0}};
  const DeadlineInstance inst(1, std::move(tasks));
  EXPECT_THROW(unit_min_weighted_tardiness(inst, {}), std::invalid_argument);
  EXPECT_THROW(unit_min_weighted_tardiness(inst, {-1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
