#include "io/instance_io.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace flowsched {
namespace {

TEST(InstanceIo, ParsesBasicFile) {
  const auto inst = parse_instance_string(
      "# comment\n"
      "machines 3\n"
      "task 0 1.5 *\n"
      "task 2 1 1,3\n"
      "task 1 2 M2\n");
  EXPECT_EQ(inst.m(), 3);
  EXPECT_EQ(inst.n(), 3);
  // Sorted by release: 0, 1, 2.
  EXPECT_DOUBLE_EQ(inst.task(0).proc, 1.5);
  EXPECT_EQ(inst.task(0).eligible.size(), 3);
  EXPECT_EQ(inst.task(1).eligible, ProcSet({1}));      // "M2" -> index 1
  EXPECT_EQ(inst.task(2).eligible, ProcSet({0, 2}));   // "1,3"
}

TEST(InstanceIo, IgnoresBlankLinesAndComments) {
  const auto inst = parse_instance_string(
      "\n  \nmachines 2 # trailing comment\n\n# whole-line comment\n"
      "task 0 1 *\n");
  EXPECT_EQ(inst.n(), 1);
}

TEST(InstanceIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_instance_string(""), std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_instance_string("task 0 1 *\nmachines 2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\nmachines 2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\ntask 0 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\ntask -1 1 *\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\ntask 0 0 *\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\ntask 0 1 3\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\ntask 0 1 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\ntask 0 1 x\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\ntask 0 1 1,\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\ntask 0 1 ,1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\ntask 0 1 1,,2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\ntask 0 1 1 extra\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_instance_string("machines 2\nbogus 1\n"),
               std::invalid_argument);
}

TEST(InstanceIo, ErrorsCarryLineNumbers) {
  try {
    parse_instance_string("machines 2\ntask 0 1 7\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(InstanceIo, RoundTripsRandomInstances) {
  Rng rng(44);
  RandomInstanceOptions opts;
  opts.m = 5;
  opts.n = 40;
  opts.sets = RandomSets::kArbitrary;
  const auto inst = random_instance(opts, rng);
  const auto reparsed = parse_instance_string(instance_to_string(inst));
  ASSERT_EQ(reparsed.n(), inst.n());
  ASSERT_EQ(reparsed.m(), inst.m());
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_DOUBLE_EQ(reparsed.task(i).release, inst.task(i).release);
    EXPECT_DOUBLE_EQ(reparsed.task(i).proc, inst.task(i).proc);
    EXPECT_EQ(reparsed.task(i).eligible, inst.task(i).eligible);
  }
}

TEST(InstanceIo, FullSetSerializesAsStar) {
  const auto inst = Instance::unrestricted(3, {{0.0, 1.0}});
  EXPECT_NE(instance_to_string(inst).find("task 0 1 *"), std::string::npos);
}

TEST(InstanceIo, ScheduleCsvHasAllRows) {
  const auto inst = Instance::unrestricted(2, {{0.0, 1.0}, {0.5, 2.0}});
  Schedule sched(inst);
  sched.assign(0, 0, 0.0);
  sched.assign(1, 1, 0.5);
  const std::string csv = schedule_to_csv(sched);
  EXPECT_NE(csv.find("task,release,proc,machine,start,completion,flow"),
            std::string::npos);
  EXPECT_NE(csv.find("0,0,1,1,0,1,1"), std::string::npos);
  EXPECT_NE(csv.find("1,0.5,2,2,0.5,2.5,2"), std::string::npos);
}

TEST(InstanceIo, LoadInstanceMissingFileThrows) {
  EXPECT_THROW(load_instance("/nonexistent/path/instance.txt"),
               std::runtime_error);
}

TEST(ScheduleStretch, MatchesDefinition) {
  const auto inst = Instance::unrestricted(1, {{0.0, 2.0}, {0.0, 1.0}});
  Schedule sched(inst);
  sched.assign(0, 0, 0.0);  // flow 2, stretch 1
  sched.assign(1, 0, 2.0);  // flow 3, stretch 3
  EXPECT_DOUBLE_EQ(sched.stretch(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.stretch(1), 3.0);
  EXPECT_DOUBLE_EQ(sched.max_stretch(), 3.0);
  EXPECT_DOUBLE_EQ(sched.mean_stretch(), 2.0);
}

}  // namespace
}  // namespace flowsched
