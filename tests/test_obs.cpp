// The observability layer's four pinned guarantees:
//  (a) trace and metrics bytes are thread-count-invariant (the PR-1
//      determinism contract extended to event streams),
//  (b) MetricsCollector agrees with the same quantities recomputed
//      independently from the returned Schedule,
//  (c) everything the recorder emits parses and validates against
//      docs/trace-format.md, and corrupted documents do not,
//  (d) a disabled observer adds zero events and leaves schedules
//      byte-identical to the pre-observability engine.
#include "obs/observer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_check.hpp"
#include "runner/experiment.hpp"
#include "sched/engine.hpp"
#include "sched/fifo.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

// Structured instance small enough to reason about, busy enough to exercise
// queueing, idle gaps, and restricted eligible sets.
Instance small_instance() {
  std::vector<Task> tasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back({.release = i * 0.25,
                     .proc = 1.0 + static_cast<double>(i % 4),
                     .eligible = ProcSet({i % 5, (i + 2) % 5})});
  }
  return Instance(5, tasks);
}

// Counts raw callbacks; used to assert the zero-event guarantee.
class CountingObserver final : public SchedObserver {
 public:
  void on_run_begin(const RunInfo&) override { ++begins; }
  void on_event(const ObsEvent&) override { ++events; }
  void on_run_end(double) override { ++ends; }

  int begins = 0;
  int events = 0;
  int ends = 0;
};

// ---------------------------------------------------------------------------
// (d) Disabled observer: zero events, identical schedules.

TEST(Observer, UnobservedRunMatchesObservedRunExactly) {
  const Instance inst = small_instance();

  EftDispatcher plain(TieBreakKind::kMin);
  const Schedule unobserved = run_dispatcher(inst, plain);

  EftDispatcher observed_eft(TieBreakKind::kMin);
  TraceRecorder trace;
  const Schedule observed = run_dispatcher(inst, observed_eft, trace);

  ASSERT_EQ(unobserved.instance().n(), observed.instance().n());
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(unobserved.machine(i), observed.machine(i)) << "task " << i;
    EXPECT_EQ(unobserved.start(i), observed.start(i)) << "task " << i;
    EXPECT_EQ(unobserved.completion(i), observed.completion(i)) << "task " << i;
  }
}

TEST(Observer, DetachedObserverReceivesNothing) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(3, eft);
  CountingObserver counter;
  engine.set_observer(&counter);
  engine.set_observer(nullptr);  // detached before any release
  engine.release({.release = 0, .proc = 1, .eligible = {}});
  engine.release({.release = 1, .proc = 2, .eligible = {}});
  engine.finish_observation();
  EXPECT_EQ(counter.begins, 0);
  EXPECT_EQ(counter.events, 0);
  EXPECT_EQ(counter.ends, 0);
}

TEST(Observer, EngineEmitsFourTaskEventsPerRelease) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(2, eft);
  CountingObserver counter;
  engine.set_observer(&counter);
  // Back-to-back on an idle engine: released/dispatched/started/completed
  // plus one machine_busy transition per release.
  engine.release({.release = 0, .proc = 1, .eligible = ProcSet({0})});
  EXPECT_EQ(counter.events, 5);
  engine.release({.release = 0, .proc = 1, .eligible = ProcSet({1})});
  EXPECT_EQ(counter.events, 10);
}

// ---------------------------------------------------------------------------
// (b) MetricsCollector vs. independent recomputation from the Schedule.

TEST(Metrics, AgreesWithScheduleRecomputation) {
  const Instance inst = small_instance();
  EftDispatcher eft(TieBreakKind::kMin);
  MetricsCollector metrics;
  const Schedule sched = run_dispatcher(inst, eft, metrics);

  ASSERT_TRUE(metrics.finished());
  EXPECT_EQ(metrics.released(), inst.n());
  EXPECT_EQ(metrics.dispatched(), inst.n());
  EXPECT_EQ(metrics.completed(), inst.n());

  // Busy time and makespan recomputed straight off the returned schedule.
  std::vector<double> busy(static_cast<std::size_t>(inst.m()), 0.0);
  double makespan = 0.0;
  double max_flow = 0.0;
  double flow_sum = 0.0;
  for (int i = 0; i < inst.n(); ++i) {
    const Task& t = inst.tasks()[static_cast<std::size_t>(i)];
    busy[static_cast<std::size_t>(sched.machine(i))] += t.proc;
    makespan = std::max(makespan, sched.completion(i));
    const double flow = sched.completion(i) - t.release;
    max_flow = std::max(max_flow, flow);
    flow_sum += flow;
  }
  EXPECT_DOUBLE_EQ(metrics.makespan(), makespan);
  EXPECT_DOUBLE_EQ(metrics.max_flow(), max_flow);
  EXPECT_DOUBLE_EQ(metrics.mean_flow(), flow_sum / inst.n());
  for (int j = 0; j < inst.m(); ++j) {
    EXPECT_DOUBLE_EQ(metrics.busy_time(j), busy[static_cast<std::size_t>(j)])
        << "machine " << j;
    EXPECT_DOUBLE_EQ(metrics.utilization(j),
                     busy[static_cast<std::size_t>(j)] / makespan)
        << "machine " << j;
  }

  // Max backlog recomputed by sweeping every event time: a task is in the
  // backlog at time tau when release <= tau < completion (the spec orders
  // completions before releases at equal timestamps, so the value *at* tau
  // counts releases <= tau minus completions <= tau).
  std::vector<double> times;
  for (int i = 0; i < inst.n(); ++i) {
    times.push_back(inst.tasks()[static_cast<std::size_t>(i)].release);
    times.push_back(sched.completion(i));
  }
  int expect_max = 0;
  for (double tau : times) {
    int backlog = 0;
    for (int i = 0; i < inst.n(); ++i) {
      if (inst.tasks()[static_cast<std::size_t>(i)].release <= tau &&
          sched.completion(i) > tau) {
        ++backlog;
      }
    }
    expect_max = std::max(expect_max, backlog);
  }
  EXPECT_EQ(metrics.max_backlog(), expect_max);

  // The backlog series is a valid staircase: starts at a release, ends at 0.
  const auto series = metrics.backlog_series();
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(series.back().value, 0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1].time, series[i].time);
  }
}

TEST(Metrics, FlowHistogramBucketsExactly) {
  // The double nearest 0.6 is 5404319552844595/2^53, strictly below the
  // 3/5 bin boundary of [0,3)/10 — the Rational path files it in bin 1,
  // while double arithmetic computes 0.6/0.3 = 2.0 (the quotient rounds up
  // to the boundary) and would misfile it into bin 2.
  FlowHistogram h(Rational(0), Rational(3), 10);
  h.add(0.6);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 0u);
  // An exactly-representable sample on a boundary goes to the upper bin.
  FlowHistogram g(Rational(0), Rational(4), 8);  // width 1/2
  g.add(1.5);
  EXPECT_EQ(g.bin_count(2), 0u);
  EXPECT_EQ(g.bin_count(3), 1u);
  // Out-of-range samples clamp into the boundary bins.
  h.add(-1.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Metrics, ReplayOfScheduleMatchesLiveRun) {
  const Instance inst = small_instance();
  EftDispatcher eft(TieBreakKind::kMin);
  MetricsCollector live;
  const Schedule sched = run_dispatcher(inst, eft, live);

  MetricsCollector replayed;
  replay_schedule(sched, RunInfo{.m = inst.m(), .algo = "EFT-replay", .tag = {}},
                  replayed);

  // Dispatch timestamps differ (replay uses start time), but every quantity
  // derived from releases/starts/completions must agree.
  EXPECT_DOUBLE_EQ(replayed.makespan(), live.makespan());
  EXPECT_DOUBLE_EQ(replayed.max_flow(), live.max_flow());
  EXPECT_DOUBLE_EQ(replayed.mean_flow(), live.mean_flow());
  EXPECT_EQ(replayed.max_backlog(), live.max_backlog());
  for (int j = 0; j < inst.m(); ++j) {
    EXPECT_DOUBLE_EQ(replayed.busy_time(j), live.busy_time(j));
  }
}

// ---------------------------------------------------------------------------
// (c) Emitted traces parse, validate, and round-trip the spec's fields.

TEST(Trace, ChromeJsonValidatesAndRoundTrips) {
  const Instance inst = small_instance();
  EftDispatcher eft(TieBreakKind::kMin);
  TraceRecorder trace;
  run_dispatcher(inst, eft, trace,
                 RunTag{.experiment = "test_obs", .cell = 0xdeadbeef, .rep = 2});

  const std::string text = trace.json();
  const auto violations = validate_trace_json(text);
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations.front());

  const JsonValue root = json_parse(text);
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.find("flowsched_trace"), nullptr);
  EXPECT_EQ(root.find("flowsched_trace")->as_number(), 1);

  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int slices = 0;
  int instants = 0;
  bool tagged_label = false;
  for (const JsonValue& e : events->as_array()) {
    const std::string ph = e.find("ph")->as_string();
    if (ph == "X") {
      ++slices;
      const JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      // flow = completion - release must be recoverable from the slice.
      const double ts = e.find("ts")->as_number();
      const double dur = e.find("dur")->as_number();
      const double release =
          args->find("release")->as_number() * kTraceTimeScale;
      EXPECT_NEAR(args->find("flow")->as_number() * kTraceTimeScale,
                  ts + dur - release, 1e-6);
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "M" && e.find("name")->as_string() == "process_name") {
      const std::string label = e.find("args")->find("name")->as_string();
      if (label.find("[test_obs/0x00000000deadbeef/rep2]") !=
          std::string::npos) {
        tagged_label = true;
      }
    }
  }
  EXPECT_EQ(slices, inst.n());    // one complete slice per task
  EXPECT_EQ(instants, inst.n());  // one release instant per task
  EXPECT_TRUE(tagged_label) << "sweep tag missing from the process label";
}

TEST(Trace, NdjsonValidatesAndCountsEvents) {
  const Instance inst = small_instance();
  EftDispatcher eft(TieBreakKind::kMin);
  TraceRecorder trace;
  run_dispatcher(inst, eft, trace);

  const std::string text = trace.ndjson();
  const auto violations = validate_trace_ndjson(text);
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations.front());
  // Auto-detection routes the NDJSON form by its header line.
  EXPECT_TRUE(validate_trace(text).empty());

  const std::string header = text.substr(0, text.find('\n'));
  const JsonValue h = json_parse(header);
  EXPECT_EQ(h.find("flowsched_trace")->as_number(), 1);
  EXPECT_EQ(h.find("format")->as_string(), "ndjson");
  EXPECT_EQ(h.find("runs")->as_number(), 1);

  int completed = 0;
  for (std::size_t pos = 0; pos < text.size();) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    if (text.compare(pos, 21, "{\"ev\":\"task_completed") == 0) ++completed;
    pos = end + 1;
  }
  EXPECT_EQ(completed, inst.n());
}

TEST(Trace, CorruptedDocumentsFailValidation) {
  // Missing traceEvents.
  EXPECT_FALSE(validate_trace_json("{\"flowsched_trace\":1}").empty());
  // Unsupported version.
  EXPECT_FALSE(
      validate_trace_json("{\"flowsched_trace\":2,\"traceEvents\":[]}").empty());
  // Task slice without the required dur / args fields.
  EXPECT_FALSE(validate_trace_json(
                   "{\"flowsched_trace\":1,\"traceEvents\":[{\"ph\":\"X\","
                   "\"pid\":0,\"tid\":0,\"ts\":0,\"name\":\"t\"}]}")
                   .empty());
  // NDJSON event for a run that never began, and a run that never ends.
  EXPECT_FALSE(
      validate_trace_ndjson(
          "{\"flowsched_trace\":1,\"format\":\"ndjson\",\"runs\":1}\n"
          "{\"ev\":\"task_started\",\"run\":0,\"t\":0,\"task\":0,\"machine\":0}\n")
          .empty());
  EXPECT_FALSE(
      validate_trace_ndjson(
          "{\"flowsched_trace\":1,\"format\":\"ndjson\",\"runs\":1}\n"
          "{\"ev\":\"run_begin\",\"run\":0,\"m\":2,\"algo\":\"EFT\"}\n")
          .empty());

  // Deleting one required field from a genuinely emitted trace must trip the
  // validator (round-trip through the spec, negative direction).
  EftDispatcher eft(TieBreakKind::kMin);
  TraceRecorder trace;
  run_dispatcher(small_instance(), eft, trace);
  std::string text = trace.json();
  const std::size_t dur = text.find("\"dur\":");
  ASSERT_NE(dur, std::string::npos);
  text.replace(dur, 6, "\"xur\":");
  EXPECT_FALSE(validate_trace_json(text).empty());
}

TEST(Trace, FifoNarrationValidates) {
  // FIFO is queue-based (dispatch at start time); its narration must satisfy
  // the same spec as the immediate-dispatch engines'.
  std::vector<Task> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back(
        {.release = i * 0.5, .proc = 2.0, .eligible = ProcSet()});
  }
  const Instance inst(3, tasks);
  TraceRecorder trace;
  fifo_schedule(inst, TieBreakKind::kMin, 0, &trace);
  ASSERT_EQ(trace.runs(), 1);
  EXPECT_TRUE(validate_trace_json(trace.json()).empty());
  EXPECT_TRUE(validate_trace_ndjson(trace.ndjson()).empty());
}

TEST(Trace, MergeKeepsRunsDistinct) {
  const Instance inst = small_instance();
  EftDispatcher eft1(TieBreakKind::kMin);
  EftDispatcher eft2(TieBreakKind::kMax);
  TraceRecorder a;
  TraceRecorder b;
  run_dispatcher(inst, eft1, a);
  run_dispatcher(inst, eft2, b);

  a.merge(std::move(b));
  EXPECT_EQ(a.runs(), 2);
  // The validator rejects duplicate run ids, so a clean merge proves the
  // pids/run ids were renumbered.
  EXPECT_TRUE(validate_trace_json(a.json()).empty());
  EXPECT_TRUE(validate_trace_ndjson(a.ndjson()).empty());
}

// ---------------------------------------------------------------------------
// (a) Thread-count invariance of the merged sweep trace + metrics rows.

// One miniature sweep replicate, in the exact shape bench_fig11_simulation
// fans out: per-job sinks, merged in job order afterwards.
struct SweepResult {
  std::string metrics_row;
  std::shared_ptr<TraceRecorder> trace;
};

std::pair<std::string, std::string> run_mini_sweep(int threads) {
  ExperimentRunner runner(threads);
  const std::uint64_t exp = experiment_id("test_obs_mini_sweep");
  const int kJobs = 8;
  const auto results = runner.map<SweepResult>(kJobs, [exp](int job) {
    const std::uint64_t cell = cell_id({static_cast<std::uint64_t>(job / 2)});
    const std::uint64_t rep = static_cast<std::uint64_t>(job % 2);
    const std::uint64_t seed = replicate_seed(exp, cell, rep);

    Rng rng(seed);
    const auto pop = make_popularity(PopularityCase::kShuffled, 8, 1.0, rng);
    KvWorkloadConfig config;
    config.m = 8;
    config.n = 120;
    config.lambda = 0.6 * 8;
    config.strategy = ReplicationStrategy::kOverlapping;
    config.k = 3;
    const auto inst = generate_kv_instance(config, pop, rng);

    SweepResult out;
    out.trace = std::make_shared<TraceRecorder>();
    MetricsCollector metrics;
    MulticastObserver observer({out.trace.get(), &metrics});
    EftDispatcher eft(TieBreakKind::kMin, seed);
    run_dispatcher(inst, eft, observer,
                   RunTag{.experiment = "test_obs_mini_sweep",
                          .cell = cell,
                          .rep = rep});
    out.metrics_row = metrics.to_json();
    return out;
  });

  TraceRecorder merged;
  std::string rows;
  for (const auto& r : results) {
    merged.merge(std::move(*r.trace));
    rows += r.metrics_row;
    rows += '\n';
  }
  return {merged.json() + "\n---\n" + merged.ndjson(), rows};
}

TEST(Trace, SweepBytesIdenticalAcrossThreadCounts) {
  const auto serial = run_mini_sweep(1);
  const auto parallel = run_mini_sweep(4);
  EXPECT_EQ(serial.first, parallel.first) << "trace bytes differ";
  EXPECT_EQ(serial.second, parallel.second) << "metrics rows differ";
  // And the merged artifacts are valid trace documents.
  const std::string& combined = serial.first;
  const std::size_t sep = combined.find("\n---\n");
  ASSERT_NE(sep, std::string::npos);
  EXPECT_TRUE(validate_trace_json(combined.substr(0, sep)).empty());
  EXPECT_TRUE(validate_trace_ndjson(combined.substr(sep + 5)).empty());
}

}  // namespace
}  // namespace flowsched
