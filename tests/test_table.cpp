#include "util/table.hpp"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(TextTable, RendersAlignedRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string r = t.render();
  EXPECT_NE(r.find("| name  | value |"), std::string::npos);
  EXPECT_NE(r.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(r.find("| b     | 22.5  |"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeaders) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(HeatGrid, StoresAndRendersValues) {
  HeatGrid g({"r1", "r2"}, {"c1", "c2", "c3"});
  g.set(0, 0, 1.0);
  g.set(1, 2, 9.5);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.at(1, 2), 9.5);
  const std::string r = g.render("s\\k", 1);
  EXPECT_NE(r.find("1.0"), std::string::npos);
  EXPECT_NE(r.find("9.5"), std::string::npos);
  EXPECT_NE(r.find("-"), std::string::npos);  // unset cells
}

TEST(HeatGrid, OutOfRangeThrows) {
  HeatGrid g({"r"}, {"c"});
  EXPECT_THROW(g.set(1, 0, 1.0), std::out_of_range);
  EXPECT_THROW(g.at(0, 1), std::out_of_range);
}

TEST(HeatGrid, ShadesScaleWithValue) {
  HeatGrid g({"row"}, {"a", "b"});
  g.set(0, 0, 0.0);
  g.set(0, 1, 1.0);
  const std::string r = g.render_shades(0.0, 1.0);
  EXPECT_EQ(r[0], ' ');  // low end of palette
  EXPECT_EQ(r[1], '@');  // high end of palette
}

}  // namespace
}  // namespace flowsched
