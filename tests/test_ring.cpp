#include "kvstore/ring.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/stats.hpp"

namespace flowsched {
namespace {

TEST(HashRing, DeterministicForSeed) {
  const HashRing a(8, 16, 42);
  const HashRing b(8, 16, 42);
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(a.primary_of_key(key), b.primary_of_key(key));
    EXPECT_EQ(a.replicas_of_key(key, 3), b.replicas_of_key(key, 3));
  }
}

TEST(HashRing, PrimaryIsFirstReplica) {
  const HashRing ring(10, 8, 7);
  for (std::uint64_t key = 0; key < 200; ++key) {
    const auto replicas = ring.replicas_of_key(key, 3);
    EXPECT_TRUE(replicas.contains(ring.primary_of_key(key))) << "key " << key;
  }
}

TEST(HashRing, ReplicasAreDistinctMachines) {
  const HashRing ring(6, 4, 3);
  for (std::uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(ring.replicas_of_key(key, 3).size(), 3);
  }
}

TEST(HashRing, FullReplicationCoversCluster) {
  const HashRing ring(5, 4, 9);
  for (std::uint64_t key = 0; key < 50; ++key) {
    EXPECT_EQ(ring.replicas_of_key(key, 5), ProcSet::all(5));
  }
}

TEST(HashRing, OwnershipSumsToOne) {
  for (int vnodes : {1, 4, 64}) {
    const HashRing ring(9, vnodes, 5);
    const auto own = ring.ownership();
    EXPECT_NEAR(std::accumulate(own.begin(), own.end(), 0.0), 1.0, 1e-9)
        << "vnodes " << vnodes;
    for (double o : own) EXPECT_GE(o, 0.0);
  }
}

TEST(HashRing, OwnershipMatchesEmpiricalKeyPlacement) {
  const HashRing ring(6, 32, 11);
  const auto own = ring.ownership();
  std::vector<int> counts(6, 0);
  const int keys = 200000;
  for (std::uint64_t key = 0; key < static_cast<std::uint64_t>(keys); ++key) {
    ++counts[static_cast<std::size_t>(ring.primary_of_key(key))];
  }
  for (int j = 0; j < 6; ++j) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(j)] / static_cast<double>(keys),
                own[static_cast<std::size_t>(j)], 0.01)
        << "machine " << j;
  }
}

TEST(HashRing, MoreVnodesReduceImbalance) {
  // The classic consistent-hashing result: ownership stddev shrinks with
  // the number of virtual nodes. Compare a single-token ring to a
  // 128-token ring across several seeds.
  double coarse = 0;
  double fine = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    coarse += stddev(HashRing(12, 1, seed).ownership());
    fine += stddev(HashRing(12, 128, seed).ownership());
  }
  EXPECT_LT(fine, coarse / 2);
}

TEST(HashRing, HashIsStable) {
  // Regression pin: placement must never change across releases, or stored
  // data would be "lost" by rehashing.
  EXPECT_EQ(HashRing::hash_key(0), HashRing::hash_key(0));
  EXPECT_NE(HashRing::hash_key(1), HashRing::hash_key(2));
}

TEST(HashRing, RejectsBadArguments) {
  EXPECT_THROW(HashRing(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(HashRing(4, 0, 1), std::invalid_argument);
  const HashRing ring(4, 4, 1);
  EXPECT_THROW(ring.replicas_at(0, 0), std::invalid_argument);
  EXPECT_THROW(ring.replicas_at(0, 5), std::invalid_argument);
}

TEST(HashRing, WrapAroundAtRingEnd) {
  // Points beyond the last token wrap to the first token's machine.
  const HashRing ring(3, 2, 13);
  const int wrap_owner = ring.primary_at(~0ULL);
  EXPECT_GE(wrap_owner, 0);
  EXPECT_LT(wrap_owner, 3);
  // And the preference list from there is still k distinct machines.
  EXPECT_EQ(ring.replicas_at(~0ULL, 3).size(), 3);
}

}  // namespace
}  // namespace flowsched
