#include "workload/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace flowsched {
namespace {

TEST(Zipf, HarmonicNumberBasics) {
  EXPECT_DOUBLE_EQ(generalized_harmonic(1, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(generalized_harmonic(3, 0.0), 3.0);
  EXPECT_NEAR(generalized_harmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  EXPECT_THROW(generalized_harmonic(0, 1.0), std::invalid_argument);
}

TEST(Zipf, WeightsSumToOne) {
  for (double s : {0.0, 0.5, 1.0, 2.5, 5.0}) {
    const auto w = zipf_weights(15, s);
    const double total = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12) << "s=" << s;
  }
}

TEST(Zipf, ZeroShapeIsUniform) {
  const auto w = zipf_weights(6, 0.0);
  for (double x : w) EXPECT_NEAR(x, 1.0 / 6.0, 1e-12);
}

TEST(Zipf, WeightsDecreaseWithRank) {
  const auto w = zipf_weights(10, 1.0);
  for (std::size_t i = 0; i + 1 < w.size(); ++i) EXPECT_GT(w[i], w[i + 1]);
}

TEST(Zipf, ExactFormula) {
  // P(E_j) = 1 / (j^s H_{m,s}).
  const int m = 7;
  const double s = 1.3;
  const double h = generalized_harmonic(m, s);
  const auto w = zipf_weights(m, s);
  for (int j = 1; j <= m; ++j) {
    EXPECT_NEAR(w[static_cast<std::size_t>(j - 1)],
                1.0 / (std::pow(j, s) * h), 1e-12);
  }
}

TEST(Zipf, LargerShapeConcentratesMass) {
  const auto mild = zipf_weights(10, 0.5);
  const auto steep = zipf_weights(10, 3.0);
  EXPECT_GT(steep[0], mild[0]);
  EXPECT_LT(steep[9], mild[9]);
}

TEST(Zipf, RejectsNegativeShape) {
  EXPECT_THROW(zipf_weights(5, -0.1), std::invalid_argument);
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchWeights) {
  const int m = 8;
  const double s = 1.0;
  ZipfSampler sampler(m, s);
  Rng rng(2024);
  std::vector<int> counts(m, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  for (int j = 0; j < m; ++j) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(j)] / static_cast<double>(n),
                sampler.weights()[static_cast<std::size_t>(j)], 0.01)
        << "rank " << j;
  }
}

TEST(ZipfSampler, AlwaysInRange) {
  ZipfSampler sampler(4, 2.0);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(sampler.sample(rng), 4u);
}

}  // namespace
}  // namespace flowsched
