#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include "workload/zipf.hpp"

namespace flowsched {
namespace {

TEST(Generator, KvInstanceBasicShape) {
  Rng rng(1);
  KvWorkloadConfig config;
  config.m = 6;
  config.n = 500;
  config.lambda = 3.0;
  config.k = 3;
  const auto pop = zipf_weights(6, 1.0);
  const auto inst = generate_kv_instance(config, pop, rng);
  EXPECT_EQ(inst.n(), 500);
  EXPECT_EQ(inst.m(), 6);
  EXPECT_TRUE(inst.unit_tasks());
  // Releases non-decreasing (Instance guarantees sorting, generator
  // produces them sorted already).
  for (int i = 1; i < inst.n(); ++i) {
    EXPECT_GE(inst.task(i).release, inst.task(i - 1).release);
  }
}

TEST(Generator, KvArrivalRateMatchesLambda) {
  Rng rng(2);
  KvWorkloadConfig config;
  config.m = 6;
  config.n = 50000;
  config.lambda = 4.0;
  const auto pop = zipf_weights(6, 0.0);
  const auto inst = generate_kv_instance(config, pop, rng);
  const double horizon = inst.task(inst.n() - 1).release;
  EXPECT_NEAR(inst.n() / horizon, 4.0, 0.1);
}

TEST(Generator, KvProcessingSetsMatchStrategy) {
  Rng rng(3);
  KvWorkloadConfig config;
  config.m = 6;
  config.n = 300;
  config.strategy = ReplicationStrategy::kDisjoint;
  config.k = 3;
  const auto pop = zipf_weights(6, 1.0);
  const auto inst = generate_kv_instance(config, pop, rng);
  const auto blocks = replica_sets(ReplicationStrategy::kDisjoint, 3, 6);
  for (const Task& t : inst.tasks()) {
    EXPECT_TRUE(t.eligible == blocks[0] || t.eligible == blocks[3])
        << t.eligible.str();
  }
}

TEST(Generator, KvOwnerFrequenciesFollowPopularity) {
  Rng rng(4);
  KvWorkloadConfig config;
  config.m = 4;
  config.n = 80000;
  config.strategy = ReplicationStrategy::kNone;
  config.k = 1;
  const std::vector<double> pop{0.4, 0.3, 0.2, 0.1};
  const auto inst = generate_kv_instance(config, pop, rng);
  std::vector<int> counts(4, 0);
  for (const Task& t : inst.tasks()) ++counts[static_cast<std::size_t>(t.eligible.min())];
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(j)] / 80000.0,
                pop[static_cast<std::size_t>(j)], 0.01);
  }
}

TEST(Generator, KvRejectsBadInput) {
  Rng rng(5);
  KvWorkloadConfig config;
  config.m = 4;
  EXPECT_THROW(generate_kv_instance(config, {0.5, 0.5}, rng),
               std::invalid_argument);
  config.lambda = 0.0;
  EXPECT_THROW(generate_kv_instance(config, std::vector<double>(4, 0.25), rng),
               std::invalid_argument);
}

TEST(Generator, RandomInstanceHonorsOptions) {
  Rng rng(6);
  RandomInstanceOptions opts;
  opts.m = 5;
  opts.n = 200;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.max_release = 20.0;
  opts.sets = RandomSets::kRingIntervals;
  const auto inst = random_instance(opts, rng);
  EXPECT_TRUE(inst.unit_tasks());
  for (const Task& t : inst.tasks()) {
    EXPECT_EQ(t.release, static_cast<long long>(t.release));
    EXPECT_TRUE(t.eligible.is_interval(5)) << t.eligible.str();
    EXPECT_GE(t.eligible.size(), 1);
  }
}

TEST(Generator, RandomInstanceProcRange) {
  Rng rng(7);
  RandomInstanceOptions opts;
  opts.m = 2;
  opts.n = 500;
  opts.min_proc = 2.0;
  opts.max_proc = 3.0;
  const auto inst = random_instance(opts, rng);
  for (const Task& t : inst.tasks()) {
    EXPECT_GE(t.proc, 2.0);
    EXPECT_LT(t.proc, 3.0);
  }
}

TEST(Generator, ArbitrarySetsAreNonEmpty) {
  Rng rng(8);
  RandomInstanceOptions opts;
  opts.m = 4;
  opts.n = 300;
  opts.sets = RandomSets::kArbitrary;
  const auto inst = random_instance(opts, rng);
  for (const Task& t : inst.tasks()) EXPECT_GE(t.eligible.size(), 1);
}

}  // namespace
}  // namespace flowsched
