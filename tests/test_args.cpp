#include "util/args.hpp"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

ArgParser parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, CommandAndOptions) {
  const auto args = parse({"run", "--algo", "eft-min", "--csv"});
  EXPECT_EQ(args.command(), "run");
  EXPECT_EQ(args.get("algo", ""), "eft-min");
  EXPECT_TRUE(args.has("csv"));
  EXPECT_FALSE(args.has("gantt"));
}

TEST(ArgParser, NoCommand) {
  const auto args = parse({"--m", "4"});
  EXPECT_EQ(args.command(), "");
  EXPECT_EQ(args.integer("m", 0), 4);
}

TEST(ArgParser, DefaultsApplyWhenAbsent) {
  const auto args = parse({"gen"});
  EXPECT_EQ(args.get("strategy", "overlapping"), "overlapping");
  EXPECT_DOUBLE_EQ(args.num("lambda", 7.5), 7.5);
  EXPECT_EQ(args.integer("k", 3), 3);
}

TEST(ArgParser, NumericValidation) {
  const auto args = parse({"x", "--rate", "2.5", "--count", "7", "--bad", "abc"});
  EXPECT_DOUBLE_EQ(args.num("rate", 0), 2.5);
  EXPECT_EQ(args.integer("count", 0), 7);
  EXPECT_THROW(args.num("bad", 0), std::invalid_argument);
  EXPECT_THROW(args.integer("rate", 0), std::invalid_argument);  // 2.5 not int
}

TEST(ArgParser, RejectsPositionalTokens) {
  EXPECT_THROW(parse({"run", "stray"}), std::invalid_argument);
  EXPECT_THROW(parse({"run", "--ok", "1", "--", "x"}), std::invalid_argument);
}

TEST(ArgParser, FlagFollowedByFlag) {
  const auto args = parse({"run", "--csv", "--gantt"});
  EXPECT_TRUE(args.has("csv"));
  EXPECT_TRUE(args.has("gantt"));
  EXPECT_EQ(args.get("csv", "x"), "");
}

TEST(ArgParser, RejectUnknownCatchesTypos) {
  const auto args = parse({"run", "--algo", "fifo", "--sed", "1"});
  args.get("algo", "");
  EXPECT_THROW(args.reject_unknown(), std::invalid_argument);
}

TEST(ArgParser, RejectUnknownPassesWhenAllQueried) {
  const auto args = parse({"run", "--algo", "fifo"});
  args.get("algo", "");
  EXPECT_NO_THROW(args.reject_unknown());
}

}  // namespace
}  // namespace flowsched
