#include "model/instance.hpp"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(Instance, SortsByReleaseStably) {
  std::vector<Task> tasks{
      {.release = 2.0, .proc = 1.0, .eligible = ProcSet::single(0)},
      {.release = 1.0, .proc = 1.0, .eligible = ProcSet::single(1)},
      {.release = 2.0, .proc = 1.0, .eligible = ProcSet::single(2)},
  };
  const Instance inst(3, std::move(tasks));
  EXPECT_EQ(inst.task(0).eligible.machines().front(), 1);
  EXPECT_EQ(inst.task(1).eligible.machines().front(), 0);  // stable order
  EXPECT_EQ(inst.task(2).eligible.machines().front(), 2);
}

TEST(Instance, EmptyEligibleExpandsToAllMachines) {
  const Instance inst(4, {Task{.release = 0, .proc = 1, .eligible = {}}});
  EXPECT_EQ(inst.task(0).eligible.size(), 4);
}

TEST(Instance, RejectsBadInputs) {
  EXPECT_THROW(Instance(0, {}), std::invalid_argument);
  EXPECT_THROW(Instance(2, {Task{.release = -1, .proc = 1, .eligible = {}}}),
               std::invalid_argument);
  EXPECT_THROW(Instance(2, {Task{.release = 0, .proc = 0, .eligible = {}}}),
               std::invalid_argument);
  EXPECT_THROW(
      Instance(2, {Task{.release = 0, .proc = 1, .eligible = ProcSet({5})}}),
      std::invalid_argument);
}

TEST(Instance, UnrestrictedFactory) {
  const auto inst = Instance::unrestricted(3, {{0.0, 1.0}, {1.0, 2.0}});
  EXPECT_EQ(inst.n(), 2);
  EXPECT_TRUE(inst.unrestricted_sets());
  EXPECT_DOUBLE_EQ(inst.task(1).proc, 2.0);
}

TEST(Instance, UnitTasksDetection) {
  const auto unit = Instance::unrestricted(2, {{0, 1}, {1, 1}});
  EXPECT_TRUE(unit.unit_tasks());
  const auto mixed = Instance::unrestricted(2, {{0, 1}, {1, 2}});
  EXPECT_FALSE(mixed.unit_tasks());
}

TEST(Instance, PmaxAndPrefix) {
  const auto inst = Instance::unrestricted(2, {{0, 1}, {1, 5}, {2, 3}});
  EXPECT_DOUBLE_EQ(inst.pmax(), 5.0);
  EXPECT_DOUBLE_EQ(inst.pmax_prefix(1), 1.0);
  EXPECT_DOUBLE_EQ(inst.pmax_prefix(2), 5.0);
  EXPECT_DOUBLE_EQ(inst.pmax_prefix(100), 5.0);
}

TEST(Instance, TotalWork) {
  const auto inst = Instance::unrestricted(2, {{0, 1.5}, {1, 2.5}});
  EXPECT_DOUBLE_EQ(inst.total_work(), 4.0);
}

TEST(Instance, StructureReflectsSets) {
  std::vector<Task> tasks{
      {.release = 0, .proc = 1, .eligible = ProcSet({0, 1})},
      {.release = 0, .proc = 1, .eligible = ProcSet({2, 3})},
  };
  const Instance inst(4, std::move(tasks));
  EXPECT_TRUE(inst.structure().disjoint);
}

TEST(Instance, UnrestrictedSetsFalseWhenRestricted) {
  std::vector<Task> tasks{{.release = 0, .proc = 1, .eligible = ProcSet({0})}};
  const Instance inst(2, std::move(tasks));
  EXPECT_FALSE(inst.unrestricted_sets());
}

}  // namespace
}  // namespace flowsched
