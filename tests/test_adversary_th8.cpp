#include "adversary/th8_stream.hpp"

#include <gtest/gtest.h>

#include "model/profile.hpp"
#include "model/structure.hpp"
#include "offline/unit_optimal.hpp"
#include "sched/engine.hpp"

namespace flowsched {
namespace {

TEST(Th8Stream, TaskTypesMatchConstruction) {
  // m=6, k=3: types are 4, 3, 2 then 1, 1, 1 (Figure 3's colored tasks).
  EXPECT_EQ(th8_task_type(1, 6, 3), 4);
  EXPECT_EQ(th8_task_type(2, 6, 3), 3);
  EXPECT_EQ(th8_task_type(3, 6, 3), 2);
  EXPECT_EQ(th8_task_type(4, 6, 3), 1);
  EXPECT_EQ(th8_task_type(6, 6, 3), 1);
  EXPECT_THROW(th8_task_type(0, 6, 3), std::invalid_argument);
  EXPECT_THROW(th8_task_type(7, 6, 3), std::invalid_argument);
}

TEST(Th8Stream, InstanceIsFixedSizeIntervalFamily) {
  const auto inst = th8_instance(6, 3, 4);
  EXPECT_EQ(inst.n(), 24);
  EXPECT_TRUE(inst.unit_tasks());
  const auto flags = inst.structure();
  EXPECT_TRUE(flags.interval);
  int k = 0;
  std::vector<ProcSet> sets;
  for (const Task& t : inst.tasks()) sets.push_back(t.eligible);
  EXPECT_TRUE(is_uniform_size_family(sets, &k));
  EXPECT_EQ(k, 3);
}

TEST(Th8Stream, PaperOptimalScheduleHasUnitFlows) {
  const auto inst = th8_instance(6, 3, 5);
  const auto opt = th8_optimal_schedule(inst, 6, 3);
  EXPECT_TRUE(opt.validate().ok()) << opt.validate().str();
  EXPECT_DOUBLE_EQ(opt.max_flow(), 1.0);
}

TEST(Th8Stream, ExactOptimumIsOne) {
  // Cross-check the paper's claimed OPT with the matching-based oracle.
  const auto inst = th8_instance(5, 2, 3);
  EXPECT_EQ(unit_optimal_fmax(inst), 1);
}

struct Th8Case {
  int m;
  int k;
};

class Th8EftMin : public ::testing::TestWithParam<Th8Case> {};

TEST_P(Th8EftMin, ReachesExactlyMMinusKPlusOne) {
  const auto [m, k] = GetParam();
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th8(eft, m, k);
  // Lemma 4 bounds the profile by w_tau, so flows never exceed m-k+1;
  // Lemma 3 guarantees the bound is reached.
  EXPECT_DOUBLE_EQ(result.achieved_fmax, m - k + 1);
  EXPECT_DOUBLE_EQ(result.opt_fmax, 1.0);
  EXPECT_DOUBLE_EQ(result.ratio(), m - k + 1);
  EXPECT_TRUE(result.schedule.validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Sizes, Th8EftMin,
                         ::testing::Values(Th8Case{4, 2}, Th8Case{6, 3},
                                           Th8Case{6, 5}, Th8Case{8, 3},
                                           Th8Case{10, 4}, Th8Case{12, 2}));

TEST(Th8EftMinProfiles, Lemma2ProfileNonIncreasing) {
  const int m = 6;
  const int k = 3;
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th8(eft, m, k, 40);
  // At every integer step t, just before the adversary's releases, the
  // profile w_t(j) must be non-increasing in j (Lemma 2).
  for (int t = 0; t <= 40; ++t) {
    auto w = machine_frontier(result.schedule, m * t);
    for (auto& v : w) v = std::max(0.0, v - t);
    EXPECT_TRUE(profile_nonincreasing(w)) << "t=" << t;
  }
}

TEST(Th8EftMinProfiles, Lemma4ProfileNeverExceedsStable) {
  const int m = 8;
  const int k = 3;
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th8(eft, m, k, 60);
  const auto w_tau = stable_profile(m, k);
  for (int t = 0; t <= 60; ++t) {
    auto w = machine_frontier(result.schedule, m * t);
    for (auto& v : w) v = std::max(0.0, v - t);
    EXPECT_TRUE(profile_leq(w, w_tau)) << "t=" << t;
  }
}

TEST(Th8EftMinProfiles, ConvergesToStableProfile) {
  const int m = 6;
  const int k = 3;
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(m, eft);
  const int steps = 4 * m * m + 8;
  bool reached = false;
  for (int t = 0; t < steps && !reached; ++t) {
    for (int i = 1; i <= m; ++i) {
      const int lo = th8_task_type(i, m, k) - 1;
      engine.release(Task{.release = static_cast<double>(t),
                          .proc = 1.0,
                          .eligible = ProcSet::interval(lo, lo + k - 1)});
    }
    const auto w = engine.profile(t + 1);
    reached = w == stable_profile(m, k);
  }
  EXPECT_TRUE(reached) << "EFT-Min never reached w_tau";
}

TEST(Th8EftRand, Theorem9RandTieBreakAlsoDegrades) {
  // Almost-sure statement; with this horizon and seed the stable profile is
  // reached deterministically given the fixed RNG stream.
  const int m = 6;
  const int k = 3;
  EftDispatcher eft(TieBreakKind::kRand, /*seed=*/2024);
  const auto result = run_th8(eft, m, k, 6 * m * m);
  EXPECT_GE(result.achieved_fmax, m - k + 1);
}

TEST(Th8Stream, RejectsDegenerateParameters) {
  EftDispatcher eft(TieBreakKind::kMin);
  EXPECT_THROW(run_th8(eft, 4, 1, 10), std::invalid_argument);  // k == 1
  EXPECT_THROW(run_th8(eft, 4, 4, 10), std::invalid_argument);  // k == m
  EXPECT_THROW(th8_instance(6, 3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
