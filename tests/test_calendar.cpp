// CalendarQueue (sched/calendar.hpp): bit-exact pop-order equality against
// a std::priority_queue ordered by (time, insertion seq) — the contract
// that let it replace the retry heap in OnlineEngine and carry the
// completion events of StreamingEngine. The reference model assigns seq in
// push order, exactly as the calendar does internally.
#include "sched/calendar.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace flowsched {
namespace {

// (time, seq, payload) min-heap: the semantics CalendarQueue promises.
class ReferenceQueue {
 public:
  void push(double time, int payload) {
    heap_.emplace(time, seq_++, payload);
  }
  bool empty() const { return heap_.empty(); }
  double top_time() const { return std::get<0>(heap_.top()); }
  int pop() {
    const int payload = std::get<2>(heap_.top());
    heap_.pop();
    return payload;
  }

 private:
  using Entry = std::tuple<double, long long, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  long long seq_ = 0;
};

// Interleaved pushes and pops, mirrored into both queues; every pop must
// agree on time and payload. `max_buckets` is tiny so the run exercises
// ring growth, the growth-time overflow drain, wrap-time drains, and the
// beyond-horizon overflow heap constantly.
void stress(std::uint64_t seed, double width, std::size_t buckets,
            std::size_t max_buckets, bool allow_past) {
  CalendarQueue<int> calendar(width, buckets, max_buckets);
  ReferenceQueue reference;
  Rng rng(seed);
  double watermark = 0;  // last popped time; past-due pushes go below it
  int next_payload = 0;
  for (int op = 0; op < 20000; ++op) {
    const bool push = calendar.empty() || rng.uniform() < 0.55;
    if (push) {
      double t;
      const double r = rng.uniform();
      if (allow_past && r < 0.05) {
        t = watermark * rng.uniform();  // past-due: before the last pop
      } else if (r < 0.55) {
        t = watermark + rng.uniform(0.0, 2.0);  // near horizon
      } else {
        t = watermark + rng.uniform(0.0, 400.0);  // far overflow
      }
      // Quantize half the pushes onto the dyadic grid so (time, seq)
      // tie-breaks are actually exercised.
      if (rng.uniform() < 0.5) t = std::floor(t * 8.0) / 8.0;
      calendar.push(t, next_payload);
      reference.push(t, next_payload);
      ++next_payload;
    } else {
      ASSERT_EQ(calendar.top_time(), reference.top_time()) << "op " << op;
      watermark = reference.top_time();
      ASSERT_EQ(calendar.pop(), reference.pop()) << "op " << op;
    }
    ASSERT_EQ(calendar.empty(), reference.empty());
  }
  while (!reference.empty()) {
    ASSERT_EQ(calendar.top_time(), reference.top_time());
    ASSERT_EQ(calendar.pop(), reference.pop());
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.size(), 0u);
}

TEST(Calendar, MatchesHeapDefaultGeometry) { stress(1, 0.125, 1024, 65536, false); }

TEST(Calendar, MatchesHeapTinyRingForcesOverflow) {
  stress(2, 0.125, 4, 16, false);
}

TEST(Calendar, MatchesHeapWithPastDuePushes) { stress(3, 0.125, 8, 64, true); }

TEST(Calendar, MatchesHeapCoarseBuckets) { stress(4, 4.0, 4, 32, true); }

TEST(Calendar, MatchesHeapManySeeds) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    stress(seed, 0.125, 16, 256, true);
  }
}

TEST(Calendar, FifoAmongEqualTimes) {
  CalendarQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(1.0, i);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.top_time(), 1.0);
    EXPECT_EQ(q.pop(), i);
  }
}

TEST(Calendar, RejectsNonFiniteTimes) {
  CalendarQueue<int> q;
  EXPECT_THROW(q.push(std::numeric_limits<double>::infinity(), 0),
               std::invalid_argument);
  EXPECT_THROW(q.push(std::nan(""), 0), std::invalid_argument);
}

TEST(Calendar, PopOnEmptyThrows) {
  CalendarQueue<int> q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.top_time(), std::logic_error);
}

TEST(Calendar, MemoryBytesIsBoundedByGeometry) {
  CalendarQueue<int> q(0.125, 8, 64);
  // Churn far more events through than the ring holds: memory must track
  // live entries + geometry, not push count.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      q.push(round * 10.0 + i * 0.25, i);
    }
    while (!q.empty()) q.pop();
  }
  EXPECT_LT(q.memory_bytes(), 1u << 20);
}

}  // namespace
}  // namespace flowsched
