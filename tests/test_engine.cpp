#include "sched/engine.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace flowsched {
namespace {

TEST(OnlineEngine, TracksCompletionsIncrementally) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(2, eft);
  const auto a0 = engine.release({.release = 0, .proc = 2, .eligible = {}});
  EXPECT_EQ(a0.machine, 0);
  EXPECT_DOUBLE_EQ(a0.start, 0.0);
  EXPECT_DOUBLE_EQ(engine.completions()[0], 2.0);

  const auto a1 = engine.release({.release = 0, .proc = 1, .eligible = {}});
  EXPECT_EQ(a1.machine, 1);
  const auto a2 = engine.release({.release = 0, .proc = 1, .eligible = {}});
  EXPECT_EQ(a2.machine, 1);  // M1 finishes at 1 < M0's 2
  EXPECT_DOUBLE_EQ(a2.start, 1.0);
  EXPECT_EQ(engine.released(), 3);
  EXPECT_EQ(engine.count_of(1), 2);
}

TEST(OnlineEngine, RejectsDecreasingReleases) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(2, eft);
  engine.release({.release = 5, .proc = 1, .eligible = {}});
  EXPECT_THROW(engine.release({.release = 4, .proc = 1, .eligible = {}}),
               std::invalid_argument);
}

TEST(OnlineEngine, RejectsBadTasks) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(2, eft);
  EXPECT_THROW(engine.release({.release = 0, .proc = 0, .eligible = {}}),
               std::invalid_argument);
  EXPECT_THROW(
      engine.release({.release = 0, .proc = 1, .eligible = ProcSet({4})}),
      std::invalid_argument);
}

TEST(OnlineEngine, EmptyEligibleMeansAllMachines) {
  EftDispatcher eft(TieBreakKind::kMax);
  OnlineEngine engine(3, eft);
  const auto a = engine.release({.release = 0, .proc = 1, .eligible = {}});
  EXPECT_EQ(a.machine, 2);  // Max tie-break over all three idle machines
}

TEST(OnlineEngine, ProfileMatchesDefinition) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(2, eft);
  engine.release({.release = 0, .proc = 3, .eligible = ProcSet({0})});
  engine.release({.release = 0, .proc = 1, .eligible = ProcSet({1})});
  const auto w = engine.profile(1.0);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(OnlineEngine, SnapshotIsSelfContainedAndValid) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(3, eft);
  for (int t = 0; t < 5; ++t) {
    engine.release({.release = static_cast<double>(t),
                    .proc = 2.0,
                    .eligible = ProcSet({t % 3, (t + 1) % 3})});
  }
  const Schedule snap = engine.snapshot();
  EXPECT_EQ(snap.instance().n(), 5);
  EXPECT_TRUE(snap.validate().ok()) << snap.validate().str();
  // The snapshot agrees with the engine's record.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(snap.machine(i), engine.machine_of(i));
    EXPECT_DOUBLE_EQ(snap.start(i), engine.start_of(i));
    EXPECT_DOUBLE_EQ(snap.completion(i), engine.completion_of(i));
  }
}

TEST(OnlineEngine, RunDispatcherMatchesIncremental) {
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back({.release = i * 0.5,
                     .proc = 1.0 + (i % 3),
                     .eligible = ProcSet({i % 4, (i + 2) % 4})});
  }
  const Instance inst(4, tasks);

  EftDispatcher eft1(TieBreakKind::kMin);
  const auto batch = run_dispatcher(inst, eft1);

  EftDispatcher eft2(TieBreakKind::kMin);
  OnlineEngine engine(4, eft2);
  for (const auto& t : inst.tasks()) engine.release(t);

  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(batch.machine(i), engine.machine_of(i));
    EXPECT_DOUBLE_EQ(batch.start(i), engine.start_of(i));
  }
}

TEST(OnlineEngine, ThrowsOnNonPositiveMachineCount) {
  EftDispatcher eft(TieBreakKind::kMin);
  EXPECT_THROW(OnlineEngine(0, eft), std::invalid_argument);
}

// The engine advances queue-depth cursors lazily — only for eligible
// machines, only when the dispatcher asks for depths. This wrapper routes
// every choice through JSQ while checking the depths the engine supplies
// against an eager brute-force recount over the full assignment history
// (the pre-optimization implementation's values).
class QueueAuditJsq final : public Dispatcher {
 public:
  explicit QueueAuditJsq(TieBreakKind kind) : jsq_(kind) {}

  void reset(int m) override {
    jsq_.reset(m);
    history_.clear();
  }

  bool needs_queue_depths() const override { return true; }

  int dispatch(const Task& t, const MachineState& state) override {
    for (int j : t.eligible.machines()) {
      int expected = 0;
      for (const auto& [machine, finish] : history_) {
        // A task finishing exactly at the release instant counts as done,
        // matching the eager sweep's `finish <= r` condition.
        if (machine == j && finish > t.release) ++expected;
      }
      EXPECT_EQ(state.queued[static_cast<std::size_t>(j)], expected)
          << "machine " << j << " at release " << t.release << " (task "
          << history_.size() << ")";
    }
    const int u = jsq_.dispatch(t, state);
    const double start =
        std::max(t.release, state.completion[static_cast<std::size_t>(u)]);
    history_.emplace_back(u, start + t.proc);
    return u;
  }

  std::string name() const override { return "QueueAuditJsq"; }

 private:
  JsqDispatcher jsq_;
  std::vector<std::pair<int, double>> history_;
};

TEST(OnlineEngine, LazyQueueDepthsMatchEagerOnInterleavedReleases) {
  QueueAuditJsq audit(TieBreakKind::kMin);
  OnlineEngine engine(4, audit);
  // Interleaved restricted releases: machines drop out of eligibility for
  // long stretches, so their cursors must catch up over several finished
  // tasks at once when they reappear.
  const std::vector<Task> tasks{
      {.release = 0.0, .proc = 3.0, .eligible = ProcSet({0, 1})},
      {.release = 0.0, .proc = 1.0, .eligible = ProcSet({1, 2})},
      {.release = 0.5, .proc = 2.0, .eligible = ProcSet({2, 3})},
      {.release = 1.0, .proc = 1.0, .eligible = ProcSet({1, 2})},
      {.release = 1.0, .proc = 4.0, .eligible = ProcSet({0})},
      {.release = 2.5, .proc = 1.0, .eligible = ProcSet({0, 1, 2, 3})},
      {.release = 3.0, .proc = 0.5, .eligible = ProcSet({1, 3})},
      {.release = 3.0, .proc = 1.0, .eligible = ProcSet({0, 1})},
      {.release = 7.0, .proc = 1.0, .eligible = ProcSet({0, 1, 2, 3})},
      {.release = 7.0, .proc = 2.0, .eligible = ProcSet({0, 2})},
      {.release = 12.0, .proc = 1.0, .eligible = ProcSet({0, 1, 2, 3})},
  };
  for (const auto& t : tasks) engine.release(t);
  EXPECT_EQ(engine.released(), static_cast<int>(tasks.size()));
}

TEST(OnlineEngine, LazyQueueDepthsMatchEagerOnRandomWorkload) {
  QueueAuditJsq audit(TieBreakKind::kMin);
  OnlineEngine engine(6, audit);
  Rng rng(20260805);
  double release = 0.0;
  for (int i = 0; i < 400; ++i) {
    release += rng.exponential(4.0);
    const int lo = static_cast<int>(rng.uniform_int(0, 5));
    const int size = static_cast<int>(rng.uniform_int(1, 3));
    engine.release({.release = release,
                    .proc = rng.uniform(0.2, 2.0),
                    .eligible = ProcSet::ring_interval(lo, size, 6)});
  }
  EXPECT_EQ(engine.released(), 400);
}

TEST(OnlineEngine, JsqScheduleUnchangedByLazyCursorScheme) {
  // The audited JSQ (lazy depths, checked against eager values) and the
  // plain JSQ must produce identical schedules on a shared workload.
  std::vector<Task> tasks;
  Rng rng(99);
  double release = 0.0;
  for (int i = 0; i < 200; ++i) {
    release += rng.exponential(3.0);
    const int lo = static_cast<int>(rng.uniform_int(0, 4));
    tasks.push_back({.release = release,
                     .proc = 1.0,
                     .eligible = ProcSet::ring_interval(lo, 2, 5)});
  }
  const Instance inst(5, tasks);

  JsqDispatcher plain(TieBreakKind::kMin);
  const auto plain_sched = run_dispatcher(inst, plain);
  QueueAuditJsq audited(TieBreakKind::kMin);
  const auto audited_sched = run_dispatcher(inst, audited);
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(plain_sched.machine(i), audited_sched.machine(i)) << "task " << i;
    EXPECT_DOUBLE_EQ(plain_sched.start(i), audited_sched.start(i));
  }
}

}  // namespace
}  // namespace flowsched
