#include "sched/engine.hpp"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(OnlineEngine, TracksCompletionsIncrementally) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(2, eft);
  const auto a0 = engine.release({.release = 0, .proc = 2, .eligible = {}});
  EXPECT_EQ(a0.machine, 0);
  EXPECT_DOUBLE_EQ(a0.start, 0.0);
  EXPECT_DOUBLE_EQ(engine.completions()[0], 2.0);

  const auto a1 = engine.release({.release = 0, .proc = 1, .eligible = {}});
  EXPECT_EQ(a1.machine, 1);
  const auto a2 = engine.release({.release = 0, .proc = 1, .eligible = {}});
  EXPECT_EQ(a2.machine, 1);  // M1 finishes at 1 < M0's 2
  EXPECT_DOUBLE_EQ(a2.start, 1.0);
  EXPECT_EQ(engine.released(), 3);
  EXPECT_EQ(engine.count_of(1), 2);
}

TEST(OnlineEngine, RejectsDecreasingReleases) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(2, eft);
  engine.release({.release = 5, .proc = 1, .eligible = {}});
  EXPECT_THROW(engine.release({.release = 4, .proc = 1, .eligible = {}}),
               std::invalid_argument);
}

TEST(OnlineEngine, RejectsBadTasks) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(2, eft);
  EXPECT_THROW(engine.release({.release = 0, .proc = 0, .eligible = {}}),
               std::invalid_argument);
  EXPECT_THROW(
      engine.release({.release = 0, .proc = 1, .eligible = ProcSet({4})}),
      std::invalid_argument);
}

TEST(OnlineEngine, EmptyEligibleMeansAllMachines) {
  EftDispatcher eft(TieBreakKind::kMax);
  OnlineEngine engine(3, eft);
  const auto a = engine.release({.release = 0, .proc = 1, .eligible = {}});
  EXPECT_EQ(a.machine, 2);  // Max tie-break over all three idle machines
}

TEST(OnlineEngine, ProfileMatchesDefinition) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(2, eft);
  engine.release({.release = 0, .proc = 3, .eligible = ProcSet({0})});
  engine.release({.release = 0, .proc = 1, .eligible = ProcSet({1})});
  const auto w = engine.profile(1.0);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(OnlineEngine, SnapshotIsSelfContainedAndValid) {
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(3, eft);
  for (int t = 0; t < 5; ++t) {
    engine.release({.release = static_cast<double>(t),
                    .proc = 2.0,
                    .eligible = ProcSet({t % 3, (t + 1) % 3})});
  }
  const Schedule snap = engine.snapshot();
  EXPECT_EQ(snap.instance().n(), 5);
  EXPECT_TRUE(snap.validate().ok()) << snap.validate().str();
  // The snapshot agrees with the engine's record.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(snap.machine(i), engine.machine_of(i));
    EXPECT_DOUBLE_EQ(snap.start(i), engine.start_of(i));
    EXPECT_DOUBLE_EQ(snap.completion(i), engine.completion_of(i));
  }
}

TEST(OnlineEngine, RunDispatcherMatchesIncremental) {
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back({.release = i * 0.5,
                     .proc = 1.0 + (i % 3),
                     .eligible = ProcSet({i % 4, (i + 2) % 4})});
  }
  const Instance inst(4, tasks);

  EftDispatcher eft1(TieBreakKind::kMin);
  const auto batch = run_dispatcher(inst, eft1);

  EftDispatcher eft2(TieBreakKind::kMin);
  OnlineEngine engine(4, eft2);
  for (const auto& t : inst.tasks()) engine.release(t);

  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(batch.machine(i), engine.machine_of(i));
    EXPECT_DOUBLE_EQ(batch.start(i), engine.start_of(i));
  }
}

TEST(OnlineEngine, ThrowsOnNonPositiveMachineCount) {
  EftDispatcher eft(TieBreakKind::kMin);
  EXPECT_THROW(OnlineEngine(0, eft), std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
