#include "sim/steady_state.hpp"

#include <gtest/gtest.h>

#include "sched/engine.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

TEST(SteadyState, TrimWarmupDropsPrefix) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto trimmed = trim_warmup(xs, 0.3);
  EXPECT_EQ(trimmed.size(), 7u);
  EXPECT_DOUBLE_EQ(trimmed.front(), 4.0);
  EXPECT_EQ(trim_warmup(xs, 0.0).size(), 10u);
  EXPECT_THROW(trim_warmup(xs, 1.0), std::invalid_argument);
  EXPECT_THROW(trim_warmup(xs, -0.1), std::invalid_argument);
}

TEST(SteadyState, TCriticalValues) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(19), 2.093, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.96, 1e-9);
  EXPECT_THROW(t_critical_95(0), std::invalid_argument);
}

TEST(SteadyState, BatchMeansOnConstantStream) {
  const std::vector<double> xs(200, 5.0);
  const auto r = batch_means_ci(xs, 10);
  EXPECT_DOUBLE_EQ(r.mean, 5.0);
  EXPECT_DOUBLE_EQ(r.half_width, 0.0);
  EXPECT_EQ(r.batches, 10);
}

TEST(SteadyState, BatchMeansCoversTrueMeanOfIidStream) {
  Rng rng(99);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.exponential(0.5));  // mean 2
  const auto r = batch_means_ci(xs, 20);
  EXPECT_NEAR(r.mean, 2.0, 3 * r.half_width + 1e-9);
  EXPECT_GT(r.half_width, 0.0);
  EXPECT_LT(std::abs(r.batch_autocorrelation), 0.5);
}

TEST(SteadyState, BatchMeansRejectsBadInput) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_THROW(batch_means_ci(xs, 1), std::invalid_argument);
  EXPECT_THROW(batch_means_ci(xs, 4), std::invalid_argument);
}

TEST(SteadyState, BacklogMatchesHandComputation) {
  // Two unit tasks on one machine at t=0: backlog at 0 is 2, at 1 is 1,
  // past the makespan it is 0.
  const auto inst = Instance::unrestricted(1, {{0.0, 1.0}, {0.0, 1.0}});
  Schedule sched(inst);
  sched.assign(0, 0, 0.0);
  sched.assign(1, 0, 1.0);
  EXPECT_DOUBLE_EQ(total_backlog_at(sched, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(total_backlog_at(sched, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(total_backlog_at(sched, 5.0), 0.0);
}

TEST(SteadyState, BacklogIgnoresUnreleasedTasks) {
  const auto inst = Instance::unrestricted(1, {{0.0, 1.0}, {10.0, 1.0}});
  Schedule sched(inst);
  sched.assign(0, 0, 0.0);
  sched.assign(1, 0, 10.0);
  EXPECT_DOUBLE_EQ(total_backlog_at(sched, 0.5), 0.5);  // only the first task
  EXPECT_DOUBLE_EQ(total_backlog_at(sched, 10.0), 1.0);
}

TEST(SteadyState, TimeseriesCoversMakespan) {
  Rng rng(3);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 100;
  opts.max_release = 30.0;
  const auto inst = random_instance(opts, rng);
  EftDispatcher eft(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, eft);
  const auto series = backlog_timeseries(sched, 25);
  ASSERT_EQ(series.size(), 25u);
  EXPECT_NEAR(series.back().first, sched.makespan(), 1e-9);
  // At (just past) the makespan the system has drained.
  EXPECT_NEAR(series.back().second, 0.0, 1e-6);
  for (const auto& [t, backlog] : series) EXPECT_GE(backlog, -1e-9);
}

TEST(SteadyState, StableSystemBacklogStaysBounded) {
  // 50% offered load: the backlog must not trend upward over the run.
  Rng rng(5);
  const auto pop = make_popularity(PopularityCase::kUniform, 6, 0.0, rng);
  KvWorkloadConfig config;
  config.m = 6;
  config.n = 6000;
  config.lambda = 3.0;
  const auto inst = generate_kv_instance(config, pop, rng);
  EftDispatcher eft(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, eft);
  const auto series = backlog_timeseries(sched, 20);
  double first_half = 0;
  double second_half = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    (i < series.size() / 2 ? first_half : second_half) += series[i].second;
  }
  EXPECT_LT(second_half, 3 * first_half + 10.0);
}

}  // namespace
}  // namespace flowsched
