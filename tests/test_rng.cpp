#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace flowsched {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsOneHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversFullRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntThrowsOnInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double lambda = 4.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(19);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(19);
  EXPECT_THROW(rng.weighted_index(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(rng.weighted_index(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, PermutationContainsAllIndices) {
  Rng rng(29);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace flowsched
