#include "workload/access_patterns.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "workload/zipf.hpp"

namespace flowsched {
namespace {

TEST(AccessPattern, UniformWeightsEqual) {
  const auto p = AccessPattern::uniform(10);
  for (double w : p.weights()) EXPECT_NEAR(w, 0.1, 1e-12);
}

TEST(AccessPattern, ZipfianMatchesZipfWeights) {
  const auto p = AccessPattern::zipfian(8, 1.0);
  const auto z = zipf_weights(8, 1.0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(p.weights()[static_cast<std::size_t>(i)],
                z[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(AccessPattern, LatestFavorsHighestKeyIds) {
  const auto p = AccessPattern::latest(10, 1.0);
  EXPECT_GT(p.weights().back(), p.weights().front());
  EXPECT_TRUE(std::is_sorted(p.weights().begin(), p.weights().end()));
}

TEST(AccessPattern, HotspotSplitsMassAsConfigured) {
  // 20% of keys get 80% of operations.
  const auto p = AccessPattern::hotspot(100, 0.2, 0.8);
  double hot_mass = 0;
  for (int i = 0; i < 20; ++i) hot_mass += p.weights()[static_cast<std::size_t>(i)];
  EXPECT_NEAR(hot_mass, 0.8, 1e-9);
}

TEST(AccessPattern, HotspotDegenerateRegions) {
  // A single hot key; all operations on it.
  const auto p = AccessPattern::hotspot(5, 0.01, 1.0);
  EXPECT_NEAR(p.weights()[0], 1.0, 1e-12);
}

TEST(AccessPattern, WeightsAlwaysNormalized) {
  for (const auto& p :
       {AccessPattern::uniform(7), AccessPattern::zipfian(7, 2.0),
        AccessPattern::latest(7, 0.5), AccessPattern::hotspot(7, 0.3, 0.9),
        AccessPattern::from_weights({3.0, 1.0, 4.0})}) {
    const double total =
        std::accumulate(p.weights().begin(), p.weights().end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(AccessPattern, SampleFollowsWeights) {
  const auto p = AccessPattern::hotspot(10, 0.1, 0.7);
  Rng rng(8);
  int hot_hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hot_hits += p.sample(rng) == 0 ? 1 : 0;
  EXPECT_NEAR(hot_hits / static_cast<double>(n), 0.7, 0.01);
}

TEST(AccessPattern, MachinePopularityAggregatesByOwner) {
  // 4 keys on 2 machines, weights (0.4, 0.3, 0.2, 0.1): owners 0,1,0,1.
  const auto p = AccessPattern::from_weights({0.4, 0.3, 0.2, 0.1});
  const auto pop = p.machine_popularity(2);
  EXPECT_NEAR(pop[0], 0.6, 1e-12);
  EXPECT_NEAR(pop[1], 0.4, 1e-12);
}

TEST(AccessPattern, RejectsBadInput) {
  EXPECT_THROW(AccessPattern::uniform(0), std::invalid_argument);
  EXPECT_THROW(AccessPattern::hotspot(10, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(AccessPattern::hotspot(10, 1.5, 0.5), std::invalid_argument);
  EXPECT_THROW(AccessPattern::from_weights({1.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(AccessPattern::from_weights({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AccessPattern::from_weights({}), std::invalid_argument);
  const auto p = AccessPattern::uniform(4);
  EXPECT_THROW(p.machine_popularity(0), std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
