#include "sched/tiebreak.hpp"

#include <gtest/gtest.h>

#include <future>
#include <set>
#include <vector>

#include "sched/dispatchers.hpp"
#include "sched/engine.hpp"

namespace flowsched {
namespace {

TEST(TieBreak, MinPicksSmallest) {
  TieBreak tb(TieBreakKind::kMin);
  const std::vector<int> c{2, 5, 7};
  EXPECT_EQ(tb.choose(c), 2);
}

TEST(TieBreak, MaxPicksLargest) {
  TieBreak tb(TieBreakKind::kMax);
  const std::vector<int> c{2, 5, 7};
  EXPECT_EQ(tb.choose(c), 7);
}

TEST(TieBreak, RandCoversAllCandidatesWithPositiveProbability) {
  // The Theorem 9 condition: Rand never systematically discards a
  // candidate.
  TieBreak tb(TieBreakKind::kRand, 123);
  const std::vector<int> c{1, 4, 9};
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) seen.insert(tb.choose(c));
  EXPECT_EQ(seen, (std::set<int>{1, 4, 9}));
}

TEST(TieBreak, RandOnlyReturnsCandidates) {
  TieBreak tb(TieBreakKind::kRand, 7);
  const std::vector<int> c{3, 8};
  for (int i = 0; i < 100; ++i) {
    const int chosen = tb.choose(c);
    EXPECT_TRUE(chosen == 3 || chosen == 8);
  }
}

TEST(TieBreak, RandIsDeterministicPerSeed) {
  TieBreak a(TieBreakKind::kRand, 99);
  TieBreak b(TieBreakKind::kRand, 99);
  const std::vector<int> c{0, 1, 2, 3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.choose(c), b.choose(c));
}

TEST(TieBreak, SingletonAlwaysChosen) {
  for (auto kind : {TieBreakKind::kMin, TieBreakKind::kMax, TieBreakKind::kRand}) {
    TieBreak tb(kind, 1);
    const std::vector<int> c{6};
    EXPECT_EQ(tb.choose(c), 6);
  }
}

TEST(TieBreak, EmptyCandidatesThrow) {
  TieBreak tb(TieBreakKind::kMin);
  EXPECT_THROW(tb.choose(std::vector<int>{}), std::invalid_argument);
}

TEST(TieBreak, ToString) {
  EXPECT_EQ(to_string(TieBreakKind::kMin), "Min");
  EXPECT_EQ(to_string(TieBreakKind::kMax), "Max");
  EXPECT_EQ(to_string(TieBreakKind::kRand), "Rand");
}

// A burst of identical tasks keeps every machine's completion frontier
// equal, so EVERY dispatch is an equal-EFT tie and the tie-break decides
// the whole schedule.
Instance tie_heavy_instance() {
  std::vector<std::pair<double, double>> rp;
  for (int wave = 0; wave < 6; ++wave) {
    for (int i = 0; i < 4; ++i) {
      rp.emplace_back(static_cast<double>(wave), 1.0);
    }
  }
  return Instance::unrestricted(4, std::move(rp));
}

TEST(TieBreak, EqualEftTiesDeterministicAcrossThreadCounts) {
  // Each worker owns its dispatcher (the engine contract), so concurrent
  // runs of the same (kind, seed) must reproduce the serial schedule
  // bit-for-bit — a tie-break reading hidden shared state would diverge
  // here. This is the schedule-level face of the fuzzer's byte-identical
  // --threads guarantee.
  const Instance inst = tie_heavy_instance();
  for (TieBreakKind kind :
       {TieBreakKind::kMin, TieBreakKind::kMax, TieBreakKind::kRand}) {
    SCOPED_TRACE(to_string(kind));
    EftDispatcher serial(kind, 4242);
    const Schedule reference = run_dispatcher(inst, serial);
    std::vector<std::future<std::vector<std::pair<int, double>>>> workers;
    for (int w = 0; w < 4; ++w) {
      workers.push_back(std::async(std::launch::async, [&inst, kind] {
        EftDispatcher eft(kind, 4242);
        const Schedule sched = run_dispatcher(inst, eft);
        std::vector<std::pair<int, double>> out;
        for (int i = 0; i < inst.n(); ++i) {
          out.emplace_back(sched.machine(i), sched.start(i));
        }
        return out;
      }));
    }
    for (auto& worker : workers) {
      const auto got = worker.get();
      for (int i = 0; i < inst.n(); ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)].first, reference.machine(i))
            << "task " << i;
        EXPECT_EQ(got[static_cast<std::size_t>(i)].second, reference.start(i))
            << "task " << i;
      }
    }
  }
}

TEST(TieBreak, SimultaneousReleasesSpreadUnderMinTie) {
  // Four identical tasks at t = 0 on four idle machines: kMin must assign
  // machines 0..3 in release order, all starting at 0 (no stacking).
  const Instance inst = Instance::unrestricted(
      4, {{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
  EftDispatcher eft(TieBreakKind::kMin);
  const Schedule sched = run_dispatcher(inst, eft);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sched.machine(i), i);
    EXPECT_DOUBLE_EQ(sched.start(i), 0.0);
  }
}

}  // namespace
}  // namespace flowsched
