#include "sched/tiebreak.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace flowsched {
namespace {

TEST(TieBreak, MinPicksSmallest) {
  TieBreak tb(TieBreakKind::kMin);
  const std::vector<int> c{2, 5, 7};
  EXPECT_EQ(tb.choose(c), 2);
}

TEST(TieBreak, MaxPicksLargest) {
  TieBreak tb(TieBreakKind::kMax);
  const std::vector<int> c{2, 5, 7};
  EXPECT_EQ(tb.choose(c), 7);
}

TEST(TieBreak, RandCoversAllCandidatesWithPositiveProbability) {
  // The Theorem 9 condition: Rand never systematically discards a
  // candidate.
  TieBreak tb(TieBreakKind::kRand, 123);
  const std::vector<int> c{1, 4, 9};
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) seen.insert(tb.choose(c));
  EXPECT_EQ(seen, (std::set<int>{1, 4, 9}));
}

TEST(TieBreak, RandOnlyReturnsCandidates) {
  TieBreak tb(TieBreakKind::kRand, 7);
  const std::vector<int> c{3, 8};
  for (int i = 0; i < 100; ++i) {
    const int chosen = tb.choose(c);
    EXPECT_TRUE(chosen == 3 || chosen == 8);
  }
}

TEST(TieBreak, RandIsDeterministicPerSeed) {
  TieBreak a(TieBreakKind::kRand, 99);
  TieBreak b(TieBreakKind::kRand, 99);
  const std::vector<int> c{0, 1, 2, 3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.choose(c), b.choose(c));
}

TEST(TieBreak, SingletonAlwaysChosen) {
  for (auto kind : {TieBreakKind::kMin, TieBreakKind::kMax, TieBreakKind::kRand}) {
    TieBreak tb(kind, 1);
    const std::vector<int> c{6};
    EXPECT_EQ(tb.choose(c), 6);
  }
}

TEST(TieBreak, EmptyCandidatesThrow) {
  TieBreak tb(TieBreakKind::kMin);
  EXPECT_THROW(tb.choose(std::vector<int>{}), std::invalid_argument);
}

TEST(TieBreak, ToString) {
  EXPECT_EQ(to_string(TieBreakKind::kMin), "Min");
  EXPECT_EQ(to_string(TieBreakKind::kMax), "Max");
  EXPECT_EQ(to_string(TieBreakKind::kRand), "Rand");
}

}  // namespace
}  // namespace flowsched
