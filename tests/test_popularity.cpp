#include "workload/popularity.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "workload/zipf.hpp"

namespace flowsched {
namespace {

TEST(Popularity, UniformIgnoresShape) {
  Rng rng(1);
  const auto p = make_popularity(PopularityCase::kUniform, 5, 3.0, rng);
  for (double x : p) EXPECT_NEAR(x, 0.2, 1e-12);
}

TEST(Popularity, WorstCaseIsSortedDecreasing) {
  Rng rng(1);
  const auto p = make_popularity(PopularityCase::kWorstCase, 8, 1.0, rng);
  EXPECT_TRUE(std::is_sorted(p.rbegin(), p.rend()));
  EXPECT_EQ(p, zipf_weights(8, 1.0));
}

TEST(Popularity, ShuffledIsPermutationOfZipf) {
  Rng rng(42);
  auto p = make_popularity(PopularityCase::kShuffled, 8, 1.0, rng);
  auto z = zipf_weights(8, 1.0);
  std::sort(p.begin(), p.end());
  std::sort(z.begin(), z.end());
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_DOUBLE_EQ(p[i], z[i]);
}

TEST(Popularity, ShuffledVariesWithSeed) {
  Rng a(1);
  Rng b(2);
  const auto pa = make_popularity(PopularityCase::kShuffled, 10, 1.0, a);
  const auto pb = make_popularity(PopularityCase::kShuffled, 10, 1.0, b);
  EXPECT_NE(pa, pb);
}

TEST(Popularity, AllCasesSumToOne) {
  Rng rng(7);
  for (auto c : {PopularityCase::kUniform, PopularityCase::kWorstCase,
                 PopularityCase::kShuffled}) {
    const auto p = make_popularity(c, 15, 1.25, rng);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
  }
}

TEST(Popularity, ToStringNames) {
  EXPECT_EQ(to_string(PopularityCase::kUniform), "Uniform");
  EXPECT_EQ(to_string(PopularityCase::kWorstCase), "Worst-case");
  EXPECT_EQ(to_string(PopularityCase::kShuffled), "Shuffled");
}

}  // namespace
}  // namespace flowsched
