// Theorem 6's composition operator: any per-group scheduler lifted to the
// disjoint case.
#include "sched/composition.hpp"

#include <gtest/gtest.h>

#include "offline/unit_optimal.hpp"
#include "sched/engine.hpp"
#include "util/rng.hpp"
#include "workload/replication.hpp"

namespace flowsched {
namespace {

Instance disjoint_instance(int m, int k, int n, std::uint64_t seed) {
  Rng rng(seed);
  const auto blocks = replica_sets(ReplicationStrategy::kDisjoint, k, m);
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    tasks.push_back(
        {.release = static_cast<double>(rng.uniform_int(0, n / m)),
         .proc = 1.0,
         .eligible = blocks[static_cast<std::size_t>(rng.uniform_int(0, m - 1))]});
  }
  return Instance(m, std::move(tasks));
}

TEST(Composition, ProducesValidSchedules) {
  const auto inst = disjoint_instance(6, 3, 80, 1);
  const auto sched = composed_fifo_schedule(inst);
  EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
}

TEST(Composition, MatchesRestrictedEftOnDisjointInstances) {
  // Proposition 1 within each group: composed FIFO == restricted EFT.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = disjoint_instance(6, 3, 60, 10 + seed);
    const auto composed = composed_fifo_schedule(inst, TieBreakKind::kMin);
    EftDispatcher eft(TieBreakKind::kMin);
    const auto direct = run_dispatcher(inst, eft);
    for (int i = 0; i < inst.n(); ++i) {
      EXPECT_NEAR(composed.start(i), direct.start(i), 1e-9)
          << "seed " << seed << " task " << i;
      EXPECT_EQ(composed.machine(i), direct.machine(i))
          << "seed " << seed << " task " << i;
    }
  }
}

TEST(Composition, Corollary1RatioBoundHolds) {
  const int k = 3;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = disjoint_instance(9, k, 72, 50 + seed);
    const auto sched = composed_fifo_schedule(inst);
    const double opt = unit_optimal_fmax(inst);
    EXPECT_LE(sched.max_flow(), (3.0 - 2.0 / k) * opt + 1e-9) << "seed " << seed;
  }
}

TEST(Composition, WorksWithArbitraryInnerScheduler) {
  // Plug EFT-Max inside instead of FIFO: still valid, group-local.
  const auto inst = disjoint_instance(6, 3, 40, 7);
  const auto sched = composed_schedule(inst, [](const Instance& sub) {
    EftDispatcher eft(TieBreakKind::kMax);
    return run_dispatcher(sub, eft);
  });
  EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
}

TEST(Composition, UnevenLastBlockHandled) {
  // m = 7, k = 3: blocks {0..2}, {3..5}, {6} — the singleton block is a
  // one-machine sub-instance.
  const auto inst = disjoint_instance(7, 3, 35, 3);
  const auto sched = composed_fifo_schedule(inst);
  EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
}

TEST(Composition, RejectsOverlappingFamilies) {
  std::vector<Task> tasks{
      {.release = 0, .proc = 1, .eligible = ProcSet({0, 1})},
      {.release = 0, .proc = 1, .eligible = ProcSet({1, 2})},
  };
  const Instance inst(3, std::move(tasks));
  EXPECT_THROW(composed_fifo_schedule(inst), std::invalid_argument);
}

TEST(Composition, RejectsEmptySetAlongsideBlocks) {
  // An empty processing set means "all machines" (Instance normalizes it
  // to the full set), so next to any proper block the family stops being
  // disjoint and the composition must refuse it rather than silently
  // merging the groups.
  std::vector<Task> tasks{
      {.release = 0, .proc = 1, .eligible = ProcSet({0, 1})},
      {.release = 0, .proc = 1, .eligible = {}},  // normalized to {0,1,2,3}
  };
  const Instance inst(4, std::move(tasks));
  EXPECT_THROW(composed_fifo_schedule(inst), std::invalid_argument);
  EXPECT_THROW(
      composed_schedule(inst, [](const Instance& sub) {
        EftDispatcher eft(TieBreakKind::kMin);
        return run_dispatcher(sub, eft);
      }),
      std::invalid_argument);
}

TEST(Composition, RejectsProcessingSetOutsideMachineRange) {
  // The model layer, not the composition, is the gate: an out-of-range
  // machine id never constructs an Instance in the first place.
  std::vector<Task> tasks{{.release = 0, .proc = 1, .eligible = ProcSet({0, 4})}};
  EXPECT_THROW(Instance(4, std::move(tasks)), std::invalid_argument);
}

TEST(Composition, SimultaneousReleasesAcrossBlocks) {
  // Every task released at t = 0: each block schedules its burst
  // independently, the per-block schedules are valid, and the composed
  // result equals restricted EFT (Proposition 1 inside each group even
  // when every queue tie-breaks at once).
  const auto blocks = replica_sets(ReplicationStrategy::kDisjoint, 2, 6);
  std::vector<Task> tasks;
  for (int i = 0; i < 24; ++i) {
    tasks.push_back({.release = 0.0,
                     .proc = 1.0 + 0.5 * (i % 3),
                     .eligible = blocks[static_cast<std::size_t>(i % 3)]});
  }
  const Instance inst(6, std::move(tasks));
  const auto composed = composed_fifo_schedule(inst, TieBreakKind::kMin);
  EXPECT_TRUE(composed.validate().ok()) << composed.validate().str();
  EftDispatcher eft(TieBreakKind::kMin);
  const auto direct = run_dispatcher(inst, eft);
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(composed.machine(i), direct.machine(i)) << "task " << i;
    EXPECT_DOUBLE_EQ(composed.start(i), direct.start(i)) << "task " << i;
  }
}

}  // namespace
}  // namespace flowsched
