#include "lp/maxflow.hpp"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow f(2);
  f.add_edge(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(f.solve(0, 1), 3.5);
}

TEST(MaxFlow, SeriesBottleneck) {
  MaxFlow f(3);
  f.add_edge(0, 1, 5.0);
  f.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 2), 2.0);
}

TEST(MaxFlow, ParallelPathsSum) {
  MaxFlow f(4);
  f.add_edge(0, 1, 2.0);
  f.add_edge(1, 3, 2.0);
  f.add_edge(0, 2, 3.0);
  f.add_edge(2, 3, 3.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 3), 5.0);
}

TEST(MaxFlow, ClassicAugmentingCase) {
  // Diamond with cross edge: requires augmentation through the middle.
  MaxFlow f(4);
  f.add_edge(0, 1, 1.0);
  f.add_edge(0, 2, 1.0);
  f.add_edge(1, 2, 1.0);
  f.add_edge(1, 3, 1.0);
  f.add_edge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 3), 2.0);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(4);
  f.add_edge(0, 1, 1.0);
  f.add_edge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 3), 0.0);
}

TEST(MaxFlow, FlowOnReportsPerEdgeFlow) {
  MaxFlow f(3);
  const int e01 = f.add_edge(0, 1, 4.0);
  const int e12 = f.add_edge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(f.flow_on(e01), 3.0);
  EXPECT_DOUBLE_EQ(f.flow_on(e12), 3.0);
}

TEST(MaxFlow, BipartiteAssignment) {
  // 3 tasks x 2 machines, each machine capacity 1 -> flow 2.
  // Nodes: 0 source, 1-3 tasks, 4-5 machines, 6 sink.
  MaxFlow f(7);
  for (int t = 1; t <= 3; ++t) f.add_edge(0, t, 1.0);
  f.add_edge(1, 4, 1.0);
  f.add_edge(2, 4, 1.0);
  f.add_edge(2, 5, 1.0);
  f.add_edge(3, 5, 1.0);
  f.add_edge(4, 6, 1.0);
  f.add_edge(5, 6, 1.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 6), 2.0);
}

TEST(MaxFlow, FractionalCapacities) {
  MaxFlow f(3);
  f.add_edge(0, 1, 0.25);
  f.add_edge(0, 1, 0.5);
  f.add_edge(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(f.solve(0, 2), 0.75);
}

TEST(MaxFlow, RejectsBadConstruction) {
  EXPECT_THROW(MaxFlow(0), std::invalid_argument);
  MaxFlow f(2);
  EXPECT_THROW(f.add_edge(0, 1, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
