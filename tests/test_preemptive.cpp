#include "sched/preemptive.hpp"

#include <gtest/gtest.h>

#include "offline/preemptive_optimal.hpp"
#include "sched/fifo.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

TEST(Preemptive, SingleTaskRunsToCompletion) {
  const auto inst = Instance::unrestricted(2, {{1.0, 3.0}});
  const auto log = preemptive_schedule(inst, PreemptivePriority::kFifo);
  EXPECT_TRUE(log.validate().empty());
  EXPECT_DOUBLE_EQ(log.completion(0), 4.0);
  EXPECT_DOUBLE_EQ(log.flow(0), 3.0);
}

TEST(Preemptive, FifoPreemptsNewerTasks) {
  // Long task at 0 on one machine; two short high-priority arrivals later
  // must NOT preempt it under FIFO (older release wins).
  const auto inst = Instance::unrestricted(1, {{0.0, 5.0}, {1.0, 1.0}});
  const auto log = preemptive_schedule(inst, PreemptivePriority::kFifo);
  EXPECT_TRUE(log.validate().empty());
  EXPECT_DOUBLE_EQ(log.completion(0), 5.0);
  EXPECT_DOUBLE_EQ(log.completion(1), 6.0);
}

TEST(Preemptive, ShortestFirstPreempts) {
  // Under shortest-first the short arrival takes the machine immediately.
  const auto inst = Instance::unrestricted(1, {{0.0, 5.0}, {1.0, 1.0}});
  const auto log = preemptive_schedule(inst, PreemptivePriority::kShortestFirst);
  EXPECT_TRUE(log.validate().empty());
  EXPECT_DOUBLE_EQ(log.completion(1), 2.0);  // preempts at t=1
  EXPECT_DOUBLE_EQ(log.completion(0), 6.0);  // resumes after
  // The long task has two slices.
  int slices_of_0 = 0;
  for (const auto& s : log.slices()) slices_of_0 += s.task == 0 ? 1 : 0;
  EXPECT_EQ(slices_of_0, 2);
}

TEST(Preemptive, RespectsProcessingSets) {
  std::vector<Task> tasks{
      {.release = 0, .proc = 2, .eligible = ProcSet({0})},
      {.release = 0, .proc = 2, .eligible = ProcSet({0})},
      {.release = 0, .proc = 2, .eligible = ProcSet({1})},
  };
  const Instance inst(2, std::move(tasks));
  const auto log = preemptive_schedule(inst, PreemptivePriority::kFifo);
  EXPECT_TRUE(log.validate().empty());
  EXPECT_DOUBLE_EQ(log.completion(1), 4.0);  // serialized on M0
  EXPECT_DOUBLE_EQ(log.completion(2), 2.0);
}

TEST(Preemptive, MatchesNonPreemptiveFifoWithoutPreemptionPressure) {
  // Unit tasks, spaced releases: preemption never helps, so preemptive
  // FIFO completes everything exactly like non-preemptive FIFO.
  Rng rng(3);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 30;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.max_release = 20.0;
  const auto inst = random_instance(opts, rng);
  const auto log = preemptive_schedule(inst, PreemptivePriority::kFifo);
  const auto fifo = fifo_schedule(inst);
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_NEAR(log.completion(i), fifo.completion(i), 1e-9) << "task " << i;
  }
}

TEST(Preemptive, ValidOnRandomRestrictedInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    RandomInstanceOptions opts;
    opts.m = 4;
    opts.n = 50;
    opts.sets = RandomSets::kArbitrary;
    const auto inst = random_instance(opts, rng);
    for (auto prio : {PreemptivePriority::kFifo, PreemptivePriority::kShortestFirst}) {
      const auto log = preemptive_schedule(inst, prio);
      const auto violations = log.validate();
      EXPECT_TRUE(violations.empty())
          << "trial " << trial << ": " << violations.front();
    }
  }
}

TEST(PreemptiveOptimal, SingleTask) {
  const auto inst = Instance::unrestricted(2, {{0.0, 3.0}});
  EXPECT_NEAR(preemptive_optimal_fmax(inst), 3.0, 1e-6);
}

TEST(PreemptiveOptimal, SplitsAcrossMachines) {
  // 3 tasks of length 2 at t=0 on 2 machines: preemptive OPT = 3 (McNaughton
  // wrap-around), non-preemptive would be 4 on some machine.
  const auto inst = Instance::unrestricted(2, {{0, 2}, {0, 2}, {0, 2}});
  EXPECT_NEAR(preemptive_optimal_fmax(inst), 3.0, 1e-6);
}

TEST(PreemptiveOptimal, PmaxDominatesWhenParallel) {
  const auto inst = Instance::unrestricted(3, {{0, 5}, {0, 1}, {0, 1}});
  EXPECT_NEAR(preemptive_optimal_fmax(inst), 5.0, 1e-6);
}

TEST(PreemptiveOptimal, RestrictionsRaiseTheOptimum) {
  std::vector<Task> tasks{
      {.release = 0, .proc = 2, .eligible = ProcSet({0})},
      {.release = 0, .proc = 2, .eligible = ProcSet({0})},
  };
  const Instance inst(2, std::move(tasks));
  EXPECT_NEAR(preemptive_optimal_fmax(inst), 4.0, 1e-6);
}

TEST(PreemptiveOptimal, NeverExceedsNonPreemptiveUnitOptimum) {
  Rng rng(11);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 10;
  opts.unit_tasks = true;
  opts.integer_releases = true;
  opts.sets = RandomSets::kIntervals;
  for (int trial = 0; trial < 8; ++trial) {
    const auto inst = random_instance(opts, rng);
    const double pmtn = preemptive_optimal_fmax(inst);
    const double lb = 1.0;  // unit tasks
    EXPECT_GE(pmtn, lb - 1e-6);
    // The preemptive relaxation can only lower the optimum.
    EXPECT_LE(pmtn, static_cast<double>(inst.n()) + 1e-6);
  }
}

TEST(PreemptiveOptimal, LowerBoundsPreemptiveFifo) {
  // Table 1 (preemptive row): FIFO is (3 - 2/m)-competitive with
  // preemption; check against the exact preemptive optimum.
  Rng rng(13);
  for (int trial = 0; trial < 6; ++trial) {
    RandomInstanceOptions opts;
    opts.m = 3;
    opts.n = 20;
    opts.max_release = 8.0;
    const auto inst = random_instance(opts, rng);
    const auto log = preemptive_schedule(inst, PreemptivePriority::kFifo);
    const double opt = preemptive_optimal_fmax(inst);
    ASSERT_GT(opt, 0.0);
    EXPECT_LE(log.max_flow(), (3.0 - 2.0 / 3) * opt + 1e-6)
        << "trial " << trial;
  }
}

TEST(PreemptiveOptimal, FeasibilityMonotoneInF) {
  const auto inst = Instance::unrestricted(2, {{0, 2}, {0, 2}, {0, 2}});
  EXPECT_FALSE(preemptive_fmax_feasible(inst, 2.9));
  EXPECT_TRUE(preemptive_fmax_feasible(inst, 3.0));
  EXPECT_TRUE(preemptive_fmax_feasible(inst, 3.5));
}

TEST(PreemptiveOptimal, EmptyInstance) {
  const Instance inst(2, {});
  EXPECT_DOUBLE_EQ(preemptive_optimal_fmax(inst), 0.0);
}

}  // namespace
}  // namespace flowsched
