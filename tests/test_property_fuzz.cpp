// Property / fuzz suite: every dispatcher, on every processing-set shape,
// must uphold the model invariants on randomized instances. The grid is a
// parameterized sweep (structure x machine count x policy); each cell runs
// several seeds. Every run streams through the InvariantAuditor
// (src/check/audit.hpp), so the event-level invariants are checked live on
// the same instances, not just the end-state Schedule::validate() ones.
#include <gtest/gtest.h>

#include <memory>

#include "check/audit.hpp"
#include "offline/unit_optimal.hpp"
#include "sched/engine.hpp"
#include "sched/fifo.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

enum class Policy { kEftMin, kEftMax, kEftRand, kRandom, kJsq, kLeastLoaded, kRr };

std::unique_ptr<Dispatcher> make_policy(Policy policy, std::uint64_t seed) {
  switch (policy) {
    case Policy::kEftMin:
      return make_eft_min();
    case Policy::kEftMax:
      return make_eft_max();
    case Policy::kEftRand:
      return make_eft_rand(seed);
    case Policy::kRandom:
      return std::make_unique<RandomEligibleDispatcher>(seed);
    case Policy::kJsq:
      return std::make_unique<JsqDispatcher>(TieBreakKind::kMin);
    case Policy::kLeastLoaded:
      return std::make_unique<LeastLoadedDispatcher>(TieBreakKind::kMin);
    case Policy::kRr:
      return std::make_unique<RoundRobinDispatcher>();
  }
  return nullptr;
}

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kEftMin:
      return "EftMin";
    case Policy::kEftMax:
      return "EftMax";
    case Policy::kEftRand:
      return "EftRand";
    case Policy::kRandom:
      return "Random";
    case Policy::kJsq:
      return "Jsq";
    case Policy::kLeastLoaded:
      return "LeastLoaded";
    case Policy::kRr:
      return "RoundRobin";
  }
  return "?";
}

struct FuzzCase {
  Policy policy;
  RandomSets sets;
  int m;

  friend std::ostream& operator<<(std::ostream& os, const FuzzCase& c) {
    return os << policy_name(c.policy) << "_sets" << static_cast<int>(c.sets)
              << "_m" << c.m;
  }
};

class DispatcherFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DispatcherFuzz, InvariantsHoldOnRandomInstances) {
  const auto param = GetParam();
  Rng rng(0xF00D + static_cast<std::uint64_t>(param.m) * 131 +
          static_cast<std::uint64_t>(param.sets) * 17 +
          static_cast<std::uint64_t>(param.policy));
  for (int trial = 0; trial < 5; ++trial) {
    RandomInstanceOptions opts;
    opts.m = param.m;
    opts.n = 120;
    opts.max_release = 40.0;
    opts.sets = param.sets;
    const auto inst = random_instance(opts, rng);
    auto dispatcher = make_policy(param.policy, 99 + trial);
    InvariantAuditor auditor;
    const auto sched = run_dispatcher(inst, *dispatcher, auditor);

    // 1. Full feasibility (assignment, eligibility, releases, no overlap).
    const auto validation = sched.validate();
    ASSERT_TRUE(validation.ok())
        << policy_name(param.policy) << ": " << validation.violations.front();

    // 1b. The live event stream upholds the auditor's invariant catalog
    // (protocol, eligibility, exact accounting, busy/idle bookkeeping, and
    // the behavioural checks the policy's name promises).
    ASSERT_TRUE(auditor.ok())
        << policy_name(param.policy) << ": " << auditor.report();

    // 2. Flow of every task at least its processing time.
    for (int i = 0; i < inst.n(); ++i) {
      EXPECT_GE(sched.flow(i), inst.task(i).proc - 1e-9);
      EXPECT_GE(sched.stretch(i), 1.0 - 1e-9);
    }

    // 3. Work conservation: machine loads sum to the total work.
    double load_total = 0;
    for (double l : sched.machine_loads()) load_total += l;
    EXPECT_NEAR(load_total, inst.total_work(), 1e-6);

    // 4. Makespan sanity: at least total_work / m after the first release.
    EXPECT_GE(sched.makespan() + 1e-9,
              inst.task(0).release + inst.total_work() / inst.m() / 4);
  }
}

TEST_P(DispatcherFuzz, DeterministicForFixedSeed) {
  const auto param = GetParam();
  Rng rng(0xBEEF + static_cast<std::uint64_t>(param.m));
  RandomInstanceOptions opts;
  opts.m = param.m;
  opts.n = 60;
  opts.sets = param.sets;
  const auto inst = random_instance(opts, rng);
  auto d1 = make_policy(param.policy, 4242);
  auto d2 = make_policy(param.policy, 4242);
  const auto s1 = run_dispatcher(inst, *d1);
  const auto s2 = run_dispatcher(inst, *d2);
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(s1.machine(i), s2.machine(i)) << "task " << i;
    EXPECT_DOUBLE_EQ(s1.start(i), s2.start(i)) << "task " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DispatcherFuzz,
    ::testing::Values(
        FuzzCase{Policy::kEftMin, RandomSets::kUnrestricted, 3},
        FuzzCase{Policy::kEftMin, RandomSets::kIntervals, 5},
        FuzzCase{Policy::kEftMin, RandomSets::kRingIntervals, 6},
        FuzzCase{Policy::kEftMin, RandomSets::kArbitrary, 4},
        FuzzCase{Policy::kEftMax, RandomSets::kIntervals, 5},
        FuzzCase{Policy::kEftMax, RandomSets::kArbitrary, 6},
        FuzzCase{Policy::kEftRand, RandomSets::kRingIntervals, 5},
        FuzzCase{Policy::kEftRand, RandomSets::kArbitrary, 4},
        FuzzCase{Policy::kRandom, RandomSets::kIntervals, 5},
        FuzzCase{Policy::kRandom, RandomSets::kArbitrary, 3},
        FuzzCase{Policy::kJsq, RandomSets::kRingIntervals, 6},
        FuzzCase{Policy::kJsq, RandomSets::kArbitrary, 4},
        FuzzCase{Policy::kLeastLoaded, RandomSets::kIntervals, 5},
        FuzzCase{Policy::kLeastLoaded, RandomSets::kUnrestricted, 8},
        FuzzCase{Policy::kRr, RandomSets::kArbitrary, 5},
        FuzzCase{Policy::kRr, RandomSets::kRingIntervals, 6}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      std::ostringstream name;
      name << info.param;
      return name.str();
    });

// EFT dominates no other policy in general, but no immediate-dispatch
// policy can beat the exact optimum: a cross-policy sanity sweep on unit
// instances.
TEST(DispatcherFuzzCross, NoPolicyBeatsTheExactOptimum) {
  Rng rng(321);
  for (int trial = 0; trial < 6; ++trial) {
    RandomInstanceOptions opts;
    opts.m = 4;
    opts.n = 25;
    opts.unit_tasks = true;
    opts.integer_releases = true;
    opts.max_release = 12.0;
    opts.sets = RandomSets::kArbitrary;
    const auto inst = random_instance(opts, rng);
    const int opt = unit_optimal_fmax(inst);
    for (Policy policy : {Policy::kEftMin, Policy::kEftMax, Policy::kRandom,
                          Policy::kJsq, Policy::kRr}) {
      auto dispatcher = make_policy(policy, 7);
      const auto sched = run_dispatcher(inst, *dispatcher);
      EXPECT_GE(sched.max_flow() + 1e-9, opt) << policy_name(policy);
    }
  }
}

// FIFO-eligible, although not an immediate dispatcher, obeys the same
// model invariants.
TEST(DispatcherFuzzCross, FifoEligibleInvariants) {
  Rng rng(654);
  for (int trial = 0; trial < 6; ++trial) {
    RandomInstanceOptions opts;
    opts.m = 5;
    opts.n = 100;
    opts.sets = RandomSets::kArbitrary;
    const auto inst = random_instance(opts, rng);
    InvariantAuditor auditor;
    const auto sched =
        fifo_eligible_schedule(inst, TieBreakKind::kMin, 0, &auditor);
    ASSERT_TRUE(sched.validate().ok());
    ASSERT_TRUE(auditor.ok()) << auditor.report();
    double load_total = 0;
    for (double l : sched.machine_loads()) load_total += l;
    EXPECT_NEAR(load_total, inst.total_work(), 1e-6);
  }
}

// Unit instances with the auditor's bound oracles armed: Theorem 2 equality
// and the Theorem 1 proof-level bound are checked on every generator draw.
TEST(DispatcherFuzzCross, BoundOraclesHoldOnGeneratorDraws) {
  Rng rng(987);
  AuditConfig config;
  config.bound_oracles = true;
  for (int trial = 0; trial < 6; ++trial) {
    RandomInstanceOptions opts;
    opts.m = 4;
    opts.n = 30;
    opts.unit_tasks = true;
    opts.integer_releases = true;
    opts.max_release = 10.0;
    opts.sets = trial % 2 == 0 ? RandomSets::kUnrestricted
                               : RandomSets::kIntervals;
    const auto inst = random_instance(opts, rng);
    InvariantAuditor auditor(config);
    auto eft = make_eft_min();
    run_dispatcher(inst, *eft, auditor);
    fifo_eligible_schedule(inst, TieBreakKind::kMin, 0, &auditor);
    EXPECT_TRUE(auditor.ok()) << auditor.report();
    EXPECT_EQ(auditor.runs(), 2);
  }
}

}  // namespace
}  // namespace flowsched
