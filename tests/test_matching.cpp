#include "offline/matching.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace flowsched {
namespace {

TEST(Matching, PerfectMatchingFound) {
  BipartiteMatching m(3, 3);
  m.add_edge(0, 0);
  m.add_edge(0, 1);
  m.add_edge(1, 1);
  m.add_edge(1, 2);
  m.add_edge(2, 0);
  EXPECT_EQ(m.solve(), 3);
}

TEST(Matching, AugmentingPathRequired) {
  // Greedy 0->0 would block 1; Hopcroft-Karp must reroute.
  BipartiteMatching m(2, 2);
  m.add_edge(0, 0);
  m.add_edge(0, 1);
  m.add_edge(1, 0);
  EXPECT_EQ(m.solve(), 2);
}

TEST(Matching, DeficientSide) {
  BipartiteMatching m(3, 1);
  for (int l = 0; l < 3; ++l) m.add_edge(l, 0);
  EXPECT_EQ(m.solve(), 1);
}

TEST(Matching, NoEdgesNoMatch) {
  BipartiteMatching m(4, 4);
  EXPECT_EQ(m.solve(), 0);
}

TEST(Matching, MatchOfIsConsistent) {
  BipartiteMatching m(3, 3);
  m.add_edge(0, 2);
  m.add_edge(1, 0);
  m.add_edge(2, 1);
  EXPECT_EQ(m.solve(), 3);
  // The partner assignment is a bijection onto {0,1,2}.
  std::vector<bool> used(3, false);
  for (int l = 0; l < 3; ++l) {
    const int r = m.match_of(l);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 3);
    EXPECT_FALSE(used[static_cast<std::size_t>(r)]);
    used[static_cast<std::size_t>(r)] = true;
  }
}

TEST(Matching, HallViolatorLimitsMatching) {
  // Lefts {0,1,2} all connect only to rights {0,1}: max matching 2.
  BipartiteMatching m(3, 3);
  for (int l = 0; l < 3; ++l) {
    m.add_edge(l, 0);
    m.add_edge(l, 1);
  }
  EXPECT_EQ(m.solve(), 2);
}

TEST(Matching, RandomGraphsMatchGreedyUpperBound) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 12;
    BipartiteMatching m(n, n);
    int edges = 0;
    for (int l = 0; l < n; ++l) {
      for (int r = 0; r < n; ++r) {
        if (rng.bernoulli(0.2)) {
          m.add_edge(l, r);
          ++edges;
        }
      }
    }
    const int size = m.solve();
    EXPECT_LE(size, n);
    EXPECT_LE(size, edges);
    // Maximum matching at least any greedy one: rebuild greedily.
    // (Weaker sanity bound: size >= 1 whenever there is an edge.)
    if (edges > 0) EXPECT_GE(size, 1);
  }
}

TEST(Matching, RejectsBadRightNode) {
  BipartiteMatching m(1, 1);
  EXPECT_THROW(m.add_edge(0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
