#include "lp/simplex.hpp"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(Simplex, SimpleMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12.
  LpProblemD lp;
  const int x = lp.add_var(3.0);
  const int y = lp.add_var(2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{x, 1.0}, {y, 3.0}}, Relation::kLe, 6.0);
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 12.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
}

TEST(Simplex, InteriorOptimum) {
  // max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> x=y=4/3, obj 8/3.
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  const int y = lp.add_var(1.0);
  lp.add_constraint({{x, 2.0}, {y, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kLe, 4.0);
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 4.0 / 3.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // max x s.t. x + y = 3, x <= 2 -> x=2, y=1.
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  const int y = lp.add_var(0.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 3.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 2.0);
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min x + y s.t. x + y >= 2 (as max of negative) -> obj -2.
  LpProblemD lp;
  const int x = lp.add_var(-1.0);
  const int y = lp.add_var(-1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGe, 2.0);
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kGe, 2.0);
  EXPECT_EQ(lp.solve().status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  const int y = lp.add_var(0.0);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kLe, 1.0);
  EXPECT_EQ(lp.solve().status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsHandledByRowFlip) {
  // x - y <= -1 with max -x - y ... feasible needs y >= x + 1.
  LpProblemD lp;
  const int x = lp.add_var(0.0);
  const int y = lp.add_var(-1.0);  // minimize y
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kLe, -1.0);
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);  // y = 1 at x = 0
}

TEST(Simplex, DegenerateProgramTerminates) {
  // Multiple identical constraints create degeneracy; Bland's rule must
  // still terminate at the optimum.
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  const int y = lp.add_var(1.0);
  for (int i = 0; i < 4; ++i) {
    lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLe, 1.0);
  }
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
}

TEST(Simplex, RepeatedTermsAccumulate) {
  // x + x <= 2 means 2x <= 2.
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  lp.add_constraint({{x, 1.0}, {x, 1.0}}, Relation::kLe, 2.0);
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
}

TEST(SimplexExact, RationalSolverAgreesWithDouble) {
  // Same program in exact arithmetic: max 3x + 2y, x + y <= 4, x + 3y <= 6.
  LpProblemQ lp;
  const int x = lp.add_var(Rational(3));
  const int y = lp.add_var(Rational(2));
  lp.add_constraint({{x, Rational(1)}, {y, Rational(1)}}, Relation::kLe,
                    Rational(4));
  lp.add_constraint({{x, Rational(1)}, {y, Rational(3)}}, Relation::kLe,
                    Rational(6));
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.objective, Rational(12));
  EXPECT_EQ(sol.x[0], Rational(4));
}

TEST(SimplexExact, ExactFractionalOptimum) {
  // max x + y, 2x + y <= 4, x + 2y <= 4 -> exactly 8/3.
  LpProblemQ lp;
  const int x = lp.add_var(Rational(1));
  const int y = lp.add_var(Rational(1));
  lp.add_constraint({{x, Rational(2)}, {y, Rational(1)}}, Relation::kLe,
                    Rational(4));
  lp.add_constraint({{x, Rational(1)}, {y, Rational(2)}}, Relation::kLe,
                    Rational(4));
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.objective, Rational(8, 3));
  EXPECT_EQ(sol.x[0], Rational(4, 3));
}

TEST(SimplexExact, InfeasibleDetectedExactly) {
  LpProblemQ lp;
  const int x = lp.add_var(Rational(1));
  lp.add_constraint({{x, Rational(1)}}, Relation::kEq, Rational(1));
  lp.add_constraint({{x, Rational(1)}}, Relation::kEq, Rational(2));
  EXPECT_EQ(lp.solve().status, LpStatus::kInfeasible);
}

}  // namespace
}  // namespace flowsched
