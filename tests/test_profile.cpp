#include "model/profile.hpp"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(Profile, FrontierTracksPrefix) {
  const auto inst = Instance::unrestricted(2, {{0.0, 2.0}, {0.0, 1.0}, {1.0, 3.0}});
  Schedule s(inst);
  s.assign(0, 0, 0.0);
  s.assign(1, 1, 0.0);
  s.assign(2, 1, 1.0);
  const auto f2 = machine_frontier(s, 2);
  EXPECT_DOUBLE_EQ(f2[0], 2.0);
  EXPECT_DOUBLE_EQ(f2[1], 1.0);
  const auto f3 = machine_frontier(s, 3);
  EXPECT_DOUBLE_EQ(f3[1], 4.0);
}

TEST(Profile, ProfileClampsAtZero) {
  const auto inst = Instance::unrestricted(2, {{0.0, 1.0}});
  Schedule s(inst);
  s.assign(0, 0, 0.0);
  const auto w = profile_at(s, 1, 5.0);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(Profile, StableProfileMatchesPaperFormula) {
  // m=6, k=3 (Figure 4): w_tau = (3, 3, 3, 2, 1, 0) in 1-based machine order.
  const auto w = stable_profile(6, 3);
  EXPECT_EQ(w, (std::vector<double>{3, 3, 3, 2, 1, 0}));
}

TEST(Profile, StableProfileLastMachineZero) {
  for (int m : {4, 8, 15}) {
    for (int k = 2; k < m; ++k) {
      const auto w = stable_profile(m, k);
      EXPECT_DOUBLE_EQ(w.back(), 0.0);
      EXPECT_DOUBLE_EQ(w.front(), static_cast<double>(m - k));
      EXPECT_TRUE(profile_nonincreasing(w));
    }
  }
}

TEST(Profile, Comparisons) {
  const std::vector<double> a{1, 1, 0};
  const std::vector<double> b{2, 1, 0};
  EXPECT_TRUE(profile_leq(a, b));
  EXPECT_TRUE(profile_lt(a, b));
  EXPECT_FALSE(profile_lt(a, a));
  EXPECT_TRUE(profile_leq(a, a));
  EXPECT_FALSE(profile_leq(b, a));
  EXPECT_FALSE(profile_leq(a, std::vector<double>{1, 1}));  // size mismatch
}

TEST(Profile, NonincreasingDetection) {
  EXPECT_TRUE(profile_nonincreasing({3, 2, 2, 0}));
  EXPECT_FALSE(profile_nonincreasing({1, 2}));
}

TEST(Profile, TotalSumsWork) {
  EXPECT_DOUBLE_EQ(profile_total({1.5, 2.5, 0.0}), 4.0);
}

}  // namespace
}  // namespace flowsched
