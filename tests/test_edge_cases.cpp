// Cross-cutting edge cases that don't belong to a single module suite.
#include <gtest/gtest.h>

#include "lp/simplex.hpp"
#include "sched/engine.hpp"
#include "sched/preemptive.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

TEST(EdgeCases, BurstOfSimultaneousReleasesSpreadsAcrossMachines) {
  // m tasks at the same instant: EFT must put exactly one on each machine.
  const int m = 8;
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(m, eft);
  for (int i = 0; i < m; ++i) {
    engine.release({.release = 0.0, .proc = 1.0, .eligible = {}});
  }
  for (int j = 0; j < m; ++j) EXPECT_EQ(engine.count_of(j), 1) << "machine " << j;
}

TEST(EdgeCases, QueueDepthsVisibleToDispatchers) {
  // JSQ sees the queue drain: after the backlog clears, it reuses M0.
  JsqDispatcher jsq(TieBreakKind::kMin);
  OnlineEngine engine(2, jsq);
  engine.release({.release = 0.0, .proc = 4.0, .eligible = {}});  // M0 (tie)
  engine.release({.release = 0.0, .proc = 1.0, .eligible = {}});  // M1
  // At t=2: M0 still busy (queued 1), M1 idle (queued 0) -> M1.
  const auto a2 = engine.release({.release = 2.0, .proc = 1.0, .eligible = {}});
  EXPECT_EQ(a2.machine, 1);
  // At t=10 everything drained: tie on queue depth 0 -> Min -> M0.
  const auto a3 = engine.release({.release = 10.0, .proc = 1.0, .eligible = {}});
  EXPECT_EQ(a3.machine, 0);
}

TEST(EdgeCases, ZeroLengthTieWindowIsExact) {
  // Two machines finishing 1e-9 apart are NOT tied (above the 1e-12
  // tolerance); EFT must pick the strictly earlier one even under Max.
  EftDispatcher eft(TieBreakKind::kMax);
  OnlineEngine engine(2, eft);
  engine.release({.release = 0.0, .proc = 1.0, .eligible = ProcSet({0})});
  engine.release({.release = 0.0, .proc = 1.0 + 1e-9, .eligible = ProcSet({1})});
  const auto a = engine.release({.release = 0.0, .proc = 1.0, .eligible = {}});
  EXPECT_EQ(a.machine, 0);
}

TEST(EdgeCases, SingleMachineEverythingSerializes) {
  Rng rng(2);
  RandomInstanceOptions opts;
  opts.m = 1;
  opts.n = 50;
  const auto inst = random_instance(opts, rng);
  EftDispatcher eft(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, eft);
  EXPECT_TRUE(sched.validate().ok());
  const auto loads = sched.machine_loads();
  EXPECT_NEAR(loads[0], inst.total_work(), 1e-9);
}

TEST(EdgeCases, PreemptiveGanttShowsPreemption) {
  const auto inst = Instance::unrestricted(1, {{0.0, 3.0}, {1.0, 1.0}});
  const auto log = preemptive_schedule(inst, PreemptivePriority::kShortestFirst);
  const std::string g = log.gantt(2);
  // Task 0 runs, task 1 preempts at t=1, task 0 resumes: both ids appear.
  EXPECT_NE(g.find("0"), std::string::npos);
  EXPECT_NE(g.find("1"), std::string::npos);
  EXPECT_NE(g.find("M1"), std::string::npos);
  EXPECT_THROW(log.gantt(0), std::invalid_argument);
}

TEST(EdgeCases, SimplexIterationLimitReported) {
  // A tiny iteration budget must surface kIterLimit, not hang or lie.
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  const int y = lp.add_var(1.0);
  lp.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{x, 2.0}, {y, 1.0}}, Relation::kLe, 4.0);
  const auto sol = lp.solve(/*max_iters=*/1);
  EXPECT_EQ(sol.status, LpStatus::kIterLimit);
}

TEST(EdgeCases, EngineHandlesManyEqualReleaseRestrictedTasks) {
  // A storm of equal-release tasks all restricted to one machine: the
  // engine must chain them back-to-back with linearly growing flows.
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(4, eft);
  for (int i = 0; i < 50; ++i) {
    const auto a = engine.release({.release = 0.0, .proc = 1.0, .eligible = ProcSet({2})});
    EXPECT_EQ(a.machine, 2);
    EXPECT_DOUBLE_EQ(a.start, static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(engine.completions()[2], 50.0);
}

TEST(EdgeCases, FractionalProcessingTimesStayConsistent) {
  // Powers of two stay exact through long accumulation.
  EftDispatcher eft(TieBreakKind::kMin);
  OnlineEngine engine(1, eft);
  for (int i = 0; i < 1024; ++i) {
    engine.release({.release = 0.0, .proc = 0x1.0p-4, .eligible = {}});
  }
  EXPECT_DOUBLE_EQ(engine.completions()[0], 64.0);
}

TEST(EdgeCases, ScheduleGanttHandlesFractionalDurations) {
  const auto inst = Instance::unrestricted(2, {{0.0, 0.5}, {0.25, 1.5}});
  EftDispatcher eft(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, eft);
  EXPECT_FALSE(sched.gantt().empty());
}

}  // namespace
}  // namespace flowsched
