#include "model/schedule.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace flowsched {
namespace {

Instance two_machine_instance() {
  return Instance::unrestricted(2, {{0.0, 2.0}, {1.0, 1.0}, {1.0, 3.0}});
}

TEST(Schedule, FlowAndCompletion) {
  const auto inst = two_machine_instance();
  Schedule s(inst);
  s.assign(0, 0, 0.0);
  s.assign(1, 1, 1.0);
  s.assign(2, 0, 2.0);
  EXPECT_DOUBLE_EQ(s.completion(0), 2.0);
  EXPECT_DOUBLE_EQ(s.flow(0), 2.0);
  EXPECT_DOUBLE_EQ(s.flow(1), 1.0);
  EXPECT_DOUBLE_EQ(s.flow(2), 4.0);  // starts 2, completes 5, released 1
  EXPECT_DOUBLE_EQ(s.max_flow(), 4.0);
  EXPECT_DOUBLE_EQ(s.max_flow_prefix(2), 2.0);
  EXPECT_DOUBLE_EQ(s.mean_flow(), (2.0 + 1.0 + 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
  EXPECT_TRUE(s.complete());
}

TEST(Schedule, MachineLoads) {
  const auto inst = two_machine_instance();
  Schedule s(inst);
  s.assign(0, 0, 0.0);
  s.assign(1, 1, 1.0);
  s.assign(2, 0, 2.0);
  const auto loads = s.machine_loads();
  EXPECT_DOUBLE_EQ(loads[0], 5.0);
  EXPECT_DOUBLE_EQ(loads[1], 1.0);
}

TEST(Schedule, ValidateAcceptsFeasible) {
  const auto inst = two_machine_instance();
  Schedule s(inst);
  s.assign(0, 0, 0.0);
  s.assign(1, 1, 1.0);
  s.assign(2, 0, 2.0);
  EXPECT_TRUE(s.validate().ok()) << s.validate().str();
}

TEST(Schedule, ValidateCatchesUnassigned) {
  const auto inst = two_machine_instance();
  Schedule s(inst);
  s.assign(0, 0, 0.0);
  const auto v = s.validate();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.violations.size(), 2u);
}

TEST(Schedule, ValidateCatchesEarlyStart) {
  const auto inst = two_machine_instance();
  Schedule s(inst);
  s.assign(0, 0, 0.0);
  s.assign(1, 1, 0.5);  // released at 1.0
  s.assign(2, 1, 2.0);
  const auto v = s.validate();
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.str().find("before release"), std::string::npos);
}

TEST(Schedule, ValidateCatchesOverlap) {
  const auto inst = two_machine_instance();
  Schedule s(inst);
  s.assign(0, 0, 0.0);   // [0, 2)
  s.assign(1, 0, 1.0);   // [1, 2) overlaps
  s.assign(2, 1, 1.0);
  const auto v = s.validate();
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.str().find("overlap"), std::string::npos);
}

TEST(Schedule, ValidateAllowsTouchingIntervals) {
  const auto inst = Instance::unrestricted(1, {{0.0, 1.0}, {0.0, 1.0}});
  Schedule s(inst);
  s.assign(0, 0, 0.0);
  s.assign(1, 0, 1.0);  // back-to-back
  EXPECT_TRUE(s.validate().ok()) << s.validate().str();
}

TEST(Schedule, ValidateCatchesIneligibleMachine) {
  std::vector<Task> tasks{{.release = 0, .proc = 1, .eligible = ProcSet({1})}};
  const Instance inst(2, std::move(tasks));
  Schedule s(inst);
  s.assign(0, 0, 0.0);
  const auto v = s.validate();
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.str().find("not in processing set"), std::string::npos);
}

TEST(Schedule, AssignRejectsBadMachine) {
  const auto inst = two_machine_instance();
  Schedule s(inst);
  EXPECT_THROW(s.assign(0, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(s.assign(0, -1, 0.0), std::invalid_argument);
}

TEST(Schedule, OwningConstructorKeepsInstanceAlive) {
  auto inst = std::make_shared<Instance>(
      Instance::unrestricted(1, {{0.0, 1.0}}));
  Schedule s(inst);
  inst.reset();  // schedule holds the only reference now
  s.assign(0, 0, 0.0);
  EXPECT_DOUBLE_EQ(s.max_flow(), 1.0);
  EXPECT_TRUE(s.validate().ok());
}

TEST(Schedule, GanttShowsOccupancy) {
  const auto inst = Instance::unrestricted(2, {{0.0, 1.0}, {0.0, 2.0}});
  Schedule s(inst);
  s.assign(0, 0, 0.0);
  s.assign(1, 1, 0.0);
  const std::string g = s.gantt();
  EXPECT_NE(g.find("M1"), std::string::npos);
  EXPECT_NE(g.find("M2"), std::string::npos);
  EXPECT_NE(g.find('0'), std::string::npos);
  EXPECT_NE(g.find('1'), std::string::npos);
}

}  // namespace
}  // namespace flowsched
