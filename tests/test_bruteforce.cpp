#include "offline/bruteforce.hpp"

#include <gtest/gtest.h>

#include "sched/engine.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

TEST(BruteForce, TrivialSingleTask) {
  const auto inst = Instance::unrestricted(2, {{0.0, 3.0}});
  EXPECT_DOUBLE_EQ(brute_force_opt_fmax(inst), 3.0);
}

TEST(BruteForce, TwoTasksTwoMachines) {
  const auto inst = Instance::unrestricted(2, {{0.0, 2.0}, {0.0, 2.0}});
  EXPECT_DOUBLE_EQ(brute_force_opt_fmax(inst), 2.0);
}

TEST(BruteForce, ForcedSerialization) {
  std::vector<Task> tasks{
      {.release = 0, .proc = 2, .eligible = ProcSet({0})},
      {.release = 0, .proc = 2, .eligible = ProcSet({0})},
  };
  const Instance inst(2, std::move(tasks));
  EXPECT_DOUBLE_EQ(brute_force_opt_fmax(inst), 4.0);
}

TEST(BruteForce, KnowsToReserveMachines) {
  // The Theorem 7 shape: smart assignment avoids blocking.
  std::vector<Task> tasks{
      {.release = 0, .proc = 5, .eligible = ProcSet({1, 2})},
      {.release = 1, .proc = 5, .eligible = ProcSet({0, 1})},
      {.release = 1, .proc = 5, .eligible = ProcSet({0, 1})},
  };
  const Instance inst(4, std::move(tasks));
  EXPECT_DOUBLE_EQ(brute_force_opt_fmax(inst), 5.0);  // T1 -> M2, others M0/M1
}

TEST(BruteForce, ScheduleRealizesOptimum) {
  Rng rng(7);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 7;
  opts.sets = RandomSets::kArbitrary;
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = random_instance(opts, rng);
    const double opt = brute_force_opt_fmax(inst);
    const auto sched = brute_force_opt_schedule(inst);
    EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
    EXPECT_NEAR(sched.max_flow(), opt, 1e-9);
  }
}

TEST(BruteForce, NeverWorseThanEft) {
  Rng rng(13);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 8;
  opts.sets = RandomSets::kIntervals;
  for (int trial = 0; trial < 15; ++trial) {
    const auto inst = random_instance(opts, rng);
    EftDispatcher eft(TieBreakKind::kMin);
    const auto online = run_dispatcher(inst, eft);
    EXPECT_LE(brute_force_opt_fmax(inst), online.max_flow() + 1e-9);
  }
}

TEST(BruteForce, RefusesOversizedInstances) {
  const auto inst = Instance::unrestricted(
      2, std::vector<std::pair<double, double>>(20, {0.0, 1.0}));
  EXPECT_THROW(brute_force_opt_fmax(inst), std::invalid_argument);
  EXPECT_NO_THROW(brute_force_opt_fmax(inst, 20));  // explicit opt-in
}

TEST(BruteForce, EmptyInstanceIsZero) {
  const Instance inst(2, {});
  EXPECT_DOUBLE_EQ(brute_force_opt_fmax(inst), 0.0);
}

}  // namespace
}  // namespace flowsched
