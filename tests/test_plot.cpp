#include "util/plot.hpp"

#include <gtest/gtest.h>

namespace flowsched {
namespace {

TEST(AsciiPlot, EmptyPlot) {
  AsciiPlot plot;
  EXPECT_EQ(plot.render(), "(empty plot)\n");
}

TEST(AsciiPlot, RendersSeriesGlyphAndLegend) {
  AsciiPlot plot(20, 5);
  plot.add_series("alpha", {{0, 0}, {1, 1}, {2, 4}});
  const std::string r = plot.render();
  EXPECT_NE(r.find('o'), std::string::npos);       // first glyph
  EXPECT_NE(r.find("o = alpha"), std::string::npos);
}

TEST(AsciiPlot, DistinctGlyphsPerSeries) {
  AsciiPlot plot(20, 5);
  plot.add_series("a", {{0, 0}, {2, 2}});
  plot.add_series("b", {{0, 2}, {2, 0}});
  const std::string r = plot.render();
  EXPECT_NE(r.find("o = a"), std::string::npos);
  EXPECT_NE(r.find("x = b"), std::string::npos);
}

TEST(AsciiPlot, ExtremePointsLandOnCorners) {
  AsciiPlot plot(10, 4);
  plot.add_series("s", {{0, 0}, {9, 3}});
  const std::string r = plot.render();
  // Max y appears in the top plot row, min y in the bottom plot row.
  const auto first_row = r.find("|");
  ASSERT_NE(first_row, std::string::npos);
  const std::string top = r.substr(first_row, 12);
  EXPECT_NE(top.find('o'), std::string::npos);
}

TEST(AsciiPlot, VerticalLineRendered) {
  AsciiPlot plot(20, 5);
  plot.add_series("s", {{0, 0}, {10, 1}});
  plot.add_vline(5.0, "threshold");
  const std::string r = plot.render();
  EXPECT_NE(r.find('|'), std::string::npos);
  EXPECT_NE(r.find("threshold"), std::string::npos);
}

TEST(AsciiPlot, LogScaleHandlesWideRanges) {
  AsciiPlot plot(30, 8);
  plot.set_log_y(true);
  plot.add_series("s", {{0, 1}, {1, 10}, {2, 100}, {3, 1000}});
  const std::string r = plot.render();
  EXPECT_NE(r.find("(log)"), std::string::npos);
  // With log scaling the four points occupy four distinct rows.
  int rows_with_glyph = 0;
  std::istringstream lines(r);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find('o') != std::string::npos) ++rows_with_glyph;
  }
  EXPECT_GE(rows_with_glyph, 4);
}

TEST(AsciiPlot, RejectsTinyGrids) {
  EXPECT_THROW(AsciiPlot(2, 2), std::invalid_argument);
}

TEST(AsciiPlot, ConstantSeriesDoesNotDivideByZero) {
  AsciiPlot plot(20, 5);
  plot.add_series("flat", {{0, 2}, {1, 2}, {2, 2}});
  EXPECT_NE(plot.render().find('o'), std::string::npos);
}

}  // namespace
}  // namespace flowsched
