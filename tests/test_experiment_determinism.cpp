// The experiment runner's core guarantee: a parallel run is bit-identical
// to a serial run. Exercised on a miniature Figure-11 grid (the heaviest
// bench ported to the runner) plus the seed-derivation primitives.
#include "runner/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "sched/engine.hpp"
#include "util/stats.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

TEST(ReplicateSeed, DeterministicAndTupleSensitive) {
  const std::uint64_t exp = experiment_id("fig11_simulation");
  EXPECT_EQ(exp, experiment_id("fig11_simulation"));
  EXPECT_NE(exp, experiment_id("fig10_maxload"));

  EXPECT_EQ(replicate_seed(exp, 3, 7), replicate_seed(exp, 3, 7));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t cell = 0; cell < 32; ++cell) {
    for (std::uint64_t rep = 0; rep < 32; ++rep) {
      seeds.insert(replicate_seed(exp, cell, rep));
    }
  }
  EXPECT_EQ(seeds.size(), 32u * 32u) << "seed collision across (cell, rep)";
}

TEST(CellId, OrderSensitive) {
  EXPECT_EQ(cell_id({1, 2, 3}), cell_id({1, 2, 3}));
  EXPECT_NE(cell_id({1, 2}), cell_id({2, 1}));
  EXPECT_NE(cell_id({0}), cell_id({0, 0}));
}

TEST(ResolveThreads, RequestTakenVerbatimElseHardware) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(6), 6);
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_GE(resolve_threads(-3), 1);
}

// One Figure-11 replicate: the exact closure shape the bench fans out.
double fig11_replicate(std::uint64_t seed, PopularityCase pop_case, double s,
                       double load_fraction, ReplicationStrategy strategy,
                       TieBreakKind tie) {
  Rng rng(seed);
  const auto pop = make_popularity(pop_case, 15, s, rng);
  KvWorkloadConfig config;
  config.m = 15;
  config.n = 400;
  config.lambda = load_fraction * 15;
  config.strategy = strategy;
  config.k = 3;
  const auto inst = generate_kv_instance(config, pop, rng);
  EftDispatcher eft(tie, seed);
  return run_dispatcher(inst, eft).max_flow();
}

// Runs the miniature grid at a given thread count and returns every median
// in grid order.
std::vector<double> run_mini_grid(int threads) {
  ExperimentRunner runner(threads);
  const std::uint64_t exp = experiment_id("determinism_mini_fig11");
  const struct {
    PopularityCase pop_case;
    double s;
  } facets[] = {{PopularityCase::kUniform, 0.0},
                {PopularityCase::kShuffled, 1.0},
                {PopularityCase::kWorstCase, 1.0}};
  const int loads[] = {30, 60, 90};
  const ReplicationStrategy strategies[] = {ReplicationStrategy::kOverlapping,
                                            ReplicationStrategy::kDisjoint};
  const TieBreakKind ties[] = {TieBreakKind::kMin, TieBreakKind::kMax};

  std::vector<double> medians;
  for (const auto& facet : facets) {
    for (int load : loads) {
      for (auto strategy : strategies) {
        for (auto tie : ties) {
          // Cell excludes the tie-break: Min and Max must face the same
          // workload (the bench's paired-comparison protocol).
          const std::uint64_t cell =
              cell_id({static_cast<std::uint64_t>(facet.pop_case),
                       static_cast<std::uint64_t>(strategy),
                       static_cast<std::uint64_t>(load)});
          medians.push_back(runner.median_replicates(
              exp, cell, 5, [&](std::uint64_t seed, int /*rep*/) {
                return fig11_replicate(seed, facet.pop_case, facet.s,
                                       load / 100.0, strategy, tie);
              }));
        }
      }
    }
  }
  return medians;
}

TEST(ExperimentRunner, ParallelGridBitIdenticalToSerial) {
  const auto serial = run_mini_grid(1);
  const auto parallel = run_mini_grid(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Bit-for-bit, not approximately: same seeds, same reduction order.
    EXPECT_EQ(serial[i], parallel[i]) << "grid cell " << i;
  }
  // And a second parallel run reproduces the first (no hidden state).
  EXPECT_EQ(run_mini_grid(8), parallel);
}

TEST(ExperimentRunner, MapPreservesJobOrder) {
  ExperimentRunner runner(4);
  const auto out = runner.map<int>(100, [](int i) { return 3 * i; });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], 3 * i);
  }
}

TEST(ExperimentRunner, ReplicatesPassSeedsByContract) {
  ExperimentRunner runner(3);
  const std::uint64_t exp = experiment_id("contract");
  const auto seeds = runner.replicates(
      exp, 5, 8, [](std::uint64_t seed, int /*rep*/) {
        return static_cast<double>(seed >> 11);  // exactly representable
      });
  for (int rep = 0; rep < 8; ++rep) {
    EXPECT_EQ(seeds[static_cast<std::size_t>(rep)],
              static_cast<double>(
                  replicate_seed(exp, 5, static_cast<std::uint64_t>(rep)) >> 11));
  }
}

TEST(ExperimentRunner, PropagatesReplicateExceptions) {
  ExperimentRunner runner(4);
  EXPECT_THROW(runner.map<int>(8,
                               [](int i) -> int {
                                 if (i == 5) throw std::runtime_error("boom");
                                 return i;
                               }),
               std::runtime_error);
}

}  // namespace
}  // namespace flowsched
