// Adversaries for Theorems 3, 4, 5, 7 and the disjoint upper bound
// (Theorem 6 / Corollary 1).
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/inclusive.hpp"
#include "adversary/interval2.hpp"
#include "adversary/ksize.hpp"
#include "adversary/nested.hpp"
#include "model/structure.hpp"
#include "offline/bruteforce.hpp"
#include "offline/unit_optimal.hpp"
#include "sched/engine.hpp"
#include "sched/fifo.hpp"
#include "util/rng.hpp"
#include "workload/replication.hpp"

namespace flowsched {
namespace {

std::vector<ProcSet> sets_of(const Schedule& sched) {
  std::vector<ProcSet> sets;
  for (const Task& t : sched.instance().tasks()) sets.push_back(t.eligible);
  return sets;
}

// ---------------------------------------------------------------- Theorem 3

TEST(Th3Inclusive, FamilyIsInclusive) {
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th3_inclusive(eft, 8, 10.0);
  EXPECT_TRUE(is_inclusive_family(sets_of(result.schedule)));
  EXPECT_TRUE(result.schedule.validate().ok());
}

TEST(Th3Inclusive, ForcesLogarithmicPileUp) {
  // m = 8 (L = 3), p = 100: Fmax >= (L+1)p - L = 397.
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th3_inclusive(eft, 8, 100.0);
  EXPECT_GE(result.achieved_fmax, 4 * 100.0 - 3);
  EXPECT_DOUBLE_EQ(result.opt_fmax, 100.0);
  EXPECT_GE(result.ratio(), 3.9);  // -> floor(log2 8 + 1) = 4 as p grows
}

TEST(Th3Inclusive, WorksAgainstOtherImmediateDispatchers) {
  // The bound holds for ANY immediate dispatch algorithm.
  for (auto kind : {TieBreakKind::kMax, TieBreakKind::kRand}) {
    EftDispatcher eft(kind, 5);
    const auto result = run_th3_inclusive(eft, 8, 50.0);
    EXPECT_GE(result.achieved_fmax, 4 * 50.0 - 3) << to_string(kind);
  }
  RandomEligibleDispatcher random_dispatch(9);
  const auto result = run_th3_inclusive(random_dispatch, 8, 50.0);
  EXPECT_GE(result.achieved_fmax, 4 * 50.0 - 3);
}

TEST(Th3Inclusive, NonPowerOfTwoRoundsDown) {
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th3_inclusive(eft, 11, 50.0);  // uses m = 8
  EXPECT_EQ(result.schedule.instance().m(), 8);
  EXPECT_GE(result.achieved_fmax, 4 * 50.0 - 3);
}

TEST(Th3Inclusive, OptimumIsIndeedP) {
  // Small case solved exactly: m=4, p=3 -> brute force confirms OPT == p.
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th3_inclusive(eft, 4, 3.0);
  // n = 2 + 1 + 1 = 4 tasks on 4 machines.
  EXPECT_DOUBLE_EQ(brute_force_opt_fmax(result.schedule.instance()), 3.0);
}

TEST(Th3Inclusive, RejectsBadParameters) {
  EftDispatcher eft(TieBreakKind::kMin);
  EXPECT_THROW(run_th3_inclusive(eft, 1, 10.0), std::invalid_argument);
  EXPECT_THROW(run_th3_inclusive(eft, 8, 2.0), std::invalid_argument);  // p <= L
}

// ---------------------------------------------------------------- Theorem 4

TEST(Th4KSize, SetsHaveUniformSizeK) {
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th4_ksize(eft, 9, 3, 10.0);
  int k = 0;
  EXPECT_TRUE(is_uniform_size_family(sets_of(result.schedule), &k));
  EXPECT_EQ(k, 3);
  EXPECT_TRUE(result.schedule.validate().ok());
}

TEST(Th4KSize, ForcesLogKPileUp) {
  // m = 9, k = 3 (L = 2), p = 100: Fmax >= 2*100 - 1.
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th4_ksize(eft, 9, 3, 100.0);
  EXPECT_GE(result.achieved_fmax, 199.0);
  EXPECT_DOUBLE_EQ(result.opt_fmax, 100.0);
  EXPECT_GE(result.ratio(), 1.99);  // -> floor(log_3 9) = 2
}

TEST(Th4KSize, DeeperRecursionWithK2) {
  // m = 8, k = 2 (L = 3): ratio -> 3.
  EftDispatcher eft(TieBreakKind::kMax);
  const auto result = run_th4_ksize(eft, 8, 2, 60.0);
  EXPECT_GE(result.achieved_fmax, 3 * 60.0 - 2);
  EXPECT_GE(result.ratio(), 2.9);
}

TEST(Th4KSize, OptimumIsP) {
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th4_ksize(eft, 4, 2, 4.0);
  // n = 2 + 1 = 3 tasks: brute-force the exact optimum.
  EXPECT_DOUBLE_EQ(brute_force_opt_fmax(result.schedule.instance()), 4.0);
}

TEST(Th4KSize, GuaranteedBoundIsExactInteger) {
  // Regression: floor(log(243)/log(3)) = 4 in floating point; the bound
  // must be the exact floor(log_k m') = 5.
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th4_ksize(eft, 243, 3, 10.0);
  EXPECT_DOUBLE_EQ(result.lower_bound, 5.0);
  EXPECT_GE(result.achieved_fmax, 5 * 10.0 - 4);
}

TEST(Th4KSize, RejectsBadParameters) {
  EftDispatcher eft(TieBreakKind::kMin);
  EXPECT_THROW(run_th4_ksize(eft, 8, 1, 10.0), std::invalid_argument);
  EXPECT_THROW(run_th4_ksize(eft, 2, 3, 10.0), std::invalid_argument);
  EXPECT_THROW(run_th4_ksize(eft, 9, 3, 1.5), std::invalid_argument);
}

// ---------------------------------------------------------------- Theorem 5

TEST(Th5Nested, FamilyIsNested) {
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th5_nested(eft, 8);
  EXPECT_TRUE(is_nested_family(sets_of(result.schedule)));
  EXPECT_TRUE(result.schedule.validate().ok());
}

TEST(Th5Nested, ForcesFlowOfLogPlusTwo) {
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th5_nested(eft, 8);  // L = 3
  EXPECT_GE(result.achieved_fmax, 3 + 2);
  EXPECT_DOUBLE_EQ(result.opt_fmax, 3.0);
}

TEST(Th5Nested, HoldsForOtherTieBreaks) {
  for (auto kind : {TieBreakKind::kMax, TieBreakKind::kRand}) {
    EftDispatcher eft(kind, 11);
    const auto result = run_th5_nested(eft, 8);
    EXPECT_GE(result.achieved_fmax, 5.0) << to_string(kind);
  }
}

TEST(Th5Nested, PaperOptimumConfirmedExactly) {
  // m = 4: the exact unit-task optimum of the generated instance is <= 3,
  // matching the paper's offline strategy.
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th5_nested(eft, 4);
  EXPECT_LE(unit_optimal_fmax(result.schedule.instance()), 3);
}

TEST(Th5Nested, DefeatsNonImmediateDispatchToo) {
  // Theorem 5 covers ANY online algorithm; exercise the queue-based
  // FIFO-eligible scheduler through the replay oracle.
  FifoEligibleOracle oracle(th5_machine_count(8));
  const auto result = run_th5_nested(oracle, 8);
  EXPECT_GE(result.achieved_fmax, 3 + 2);
  EXPECT_TRUE(result.schedule.validate().ok()) << result.schedule.validate().str();
}

TEST(Th5Nested, OracleRequiresMatchingMachineCount) {
  FifoEligibleOracle oracle(7);  // not 2^floor(log2(8)) = 8
  EXPECT_THROW(run_th5_nested(oracle, 8), std::invalid_argument);
}

TEST(FifoEligibleOracleTest, MatchesDirectSimulation) {
  FifoEligibleOracle oracle(3);
  std::vector<Task> tasks{
      {.release = 0, .proc = 2, .eligible = ProcSet({0, 1})},
      {.release = 0, .proc = 1, .eligible = ProcSet({0})},
      {.release = 1, .proc = 1, .eligible = ProcSet({1, 2})},
  };
  for (const auto& t : tasks) oracle.release(t);
  const Instance inst(3, tasks);
  const auto direct = fifo_eligible_schedule(inst);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(oracle.completion(i), direct.completion(i)) << i;
  }
  EXPECT_TRUE(oracle.snapshot().validate().ok());
}

TEST(FifoEligibleOracleTest, IncrementalQueriesStayConsistent) {
  // Query between releases: the completion of an already-finished task must
  // not change when more tasks arrive later.
  FifoEligibleOracle oracle(2);
  oracle.release({.release = 0, .proc = 1, .eligible = ProcSet({0})});
  const double first = oracle.completion(0);
  oracle.release({.release = 5, .proc = 1, .eligible = ProcSet({0})});
  oracle.release({.release = 5, .proc = 1, .eligible = ProcSet({1})});
  EXPECT_DOUBLE_EQ(oracle.completion(0), first);
}

TEST(Th5Nested, LargerClusterGrowsBound) {
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th5_nested(eft, 16);  // L = 4
  EXPECT_GE(result.achieved_fmax, 4 + 2);
}

TEST(Th5Nested, RejectsTinyClusters) {
  EftDispatcher eft(TieBreakKind::kMin);
  EXPECT_THROW(run_th5_nested(eft, 3), std::invalid_argument);
}

// ---------------------------------------------------------------- Theorem 7

TEST(Th7Interval, EftMinSuffersTwiceOpt) {
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th7_interval(eft, 50.0);
  EXPECT_DOUBLE_EQ(result.achieved_fmax, 2 * 50.0 - 1);
  EXPECT_DOUBLE_EQ(result.opt_fmax, 50.0);
  EXPECT_NEAR(result.ratio(), 2.0, 0.05);
}

TEST(Th7Interval, BothBranchesOfTheAdversary) {
  // Min picks M2 (case i), Max picks M3 (case ii); both must be punished.
  EftDispatcher min_d(TieBreakKind::kMin);
  EftDispatcher max_d(TieBreakKind::kMax);
  const auto r_min = run_th7_interval(min_d, 20.0);
  const auto r_max = run_th7_interval(max_d, 20.0);
  EXPECT_DOUBLE_EQ(r_min.achieved_fmax, 39.0);
  EXPECT_DOUBLE_EQ(r_max.achieved_fmax, 39.0);
}

TEST(Th7Interval, OptimumConfirmedByBruteForce) {
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th7_interval(eft, 7.0);
  EXPECT_DOUBLE_EQ(brute_force_opt_fmax(result.schedule.instance()), 7.0);
}

TEST(Th7Interval, InstanceUsesFixedSizeIntervals) {
  EftDispatcher eft(TieBreakKind::kMin);
  const auto result = run_th7_interval(eft, 5.0);
  int k = 0;
  EXPECT_TRUE(is_uniform_size_family(sets_of(result.schedule), &k));
  EXPECT_EQ(k, 2);
  EXPECT_TRUE(is_interval_family(sets_of(result.schedule), 4));
}

// -------------------------------------------- Theorem 6 / Corollary 1 check

TEST(Corollary1, EftOnDisjointIntervalsStaysWithinBound) {
  // EFT restricted to disjoint blocks of size k is (3 - 2/k)-competitive.
  // Generate random unit-task instances with disjoint-block sets and compare
  // to the exact optimum.
  Rng rng(97);
  const int m = 6;
  const int k = 3;
  const auto blocks = replica_sets(ReplicationStrategy::kDisjoint, k, m);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Task> tasks;
    for (int i = 0; i < 60; ++i) {
      tasks.push_back(
          {.release = static_cast<double>(rng.uniform_int(0, 15)),
           .proc = 1.0,
           .eligible = blocks[static_cast<std::size_t>(rng.uniform_int(0, m - 1))]});
    }
    const Instance inst(m, std::move(tasks));
    EftDispatcher eft(TieBreakKind::kMin);
    const auto sched = run_dispatcher(inst, eft);
    const double opt = unit_optimal_fmax(inst);
    EXPECT_LE(sched.max_flow(), (3.0 - 2.0 / k) * opt + 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace flowsched
