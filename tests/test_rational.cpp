#include "util/rational.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace flowsched {
namespace {

TEST(Rational, NormalizesSignAndGcd) {
  const Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, ZeroHasCanonicalForm) {
  const Rational r(0, 7);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  const Rational a(1, 3);
  const Rational b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(5, 10), Rational(1, 2));
}

TEST(Rational, AbsAndNegation) {
  EXPECT_EQ(abs(Rational(-3, 4)), Rational(3, 4));
  EXPECT_EQ(-Rational(3, 4), Rational(-3, 4));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-7, 2).to_double(), -3.5);
}

TEST(Rational, StreamOutput) {
  std::ostringstream out;
  out << Rational(3, 4) << ' ' << Rational(5);
  EXPECT_EQ(out.str(), "3/4 5");
}

TEST(Rational, LargeIntermediatesReduce) {
  // (2^40 / 3) * (3 / 2^40) = 1: the 128-bit intermediate products must not
  // overflow before reduction.
  const Rational big(1LL << 40, 3);
  const Rational inv(3, 1LL << 40);
  EXPECT_EQ(big * inv, Rational(1));
}

TEST(Rational, OverflowAfterReductionThrows) {
  const Rational big((1LL << 62), 1);
  EXPECT_THROW(big * Rational(4), std::overflow_error);
}

TEST(Rational, SummingSeriesExactly) {
  // 1/1 + 1/2 + ... + 1/10 = 7381/2520.
  Rational sum(0);
  for (int i = 1; i <= 10; ++i) sum += Rational(1, i);
  EXPECT_EQ(sum, Rational(7381, 2520));
}

}  // namespace
}  // namespace flowsched
