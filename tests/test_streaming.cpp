// StreamingEngine + P2 sketches + simulate_cluster_streaming
// (docs/streaming.md): the bit-equivalence contract against OnlineEngine /
// simulate_cluster, the sketch error bounds, and the windowed StreamAuditor.
#include "sched/streaming.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "check/gen.hpp"
#include "check/stream_audit.hpp"
#include "kvstore/cluster_sim.hpp"
#include "obs/sketch.hpp"
#include "sched/dispatchers.hpp"
#include "sched/engine.hpp"
#include "util/rng.hpp"

namespace flowsched {
namespace {

std::unique_ptr<Dispatcher> make_policy(const std::string& name) {
  if (name == "eft-min") return make_eft_min();
  if (name == "eft-max") return make_eft_max();
  if (name == "eft-rand") return make_eft_rand(0x5eed);
  if (name == "random") return std::make_unique<RandomEligibleDispatcher>(0x5eed);
  if (name == "jsq") return std::make_unique<JsqDispatcher>(TieBreakKind::kMin);
  if (name == "rr") return std::make_unique<RoundRobinDispatcher>();
  if (name == "po2") return std::make_unique<PowerOfDChoicesDispatcher>(2, 0x5eed);
  throw std::invalid_argument("unknown policy " + name);
}

const std::vector<std::string> kPolicies = {
    "eft-min", "eft-max", "eft-rand", "random", "jsq", "rr", "po2"};

// The tentpole equivalence contract: for any instance and any dispatcher,
// StreamingEngine commits the bit-identical (machine, start) sequence as
// OnlineEngine, and leaves identical per-machine aggregates behind.
TEST(Streaming, EngineMatchesOnlineEngineAcrossPolicies) {
  StructuredInstanceOptions opts;
  opts.max_n = 60;
  for (const std::string& policy : kPolicies) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed);
      const FuzzStructure structure =
          kAllFuzzStructures[seed % std::size(kAllFuzzStructures)];
      const Instance inst = random_structured_instance(structure, opts, rng);

      auto batch_policy = make_policy(policy);
      auto stream_policy = make_policy(policy);
      OnlineEngine batch(inst.m(), *batch_policy);
      StreamingEngine stream(inst.m(), *stream_policy);
      for (const Task& t : inst.tasks()) {
        const Assignment a = batch.release(t);
        const Assignment s = stream.release(t);
        ASSERT_EQ(s.machine, a.machine)
            << policy << " seed=" << seed << " diverged on machine choice";
        ASSERT_EQ(s.start, a.start)
            << policy << " seed=" << seed << " diverged on start time";
      }
      stream.drain();
      EXPECT_EQ(stream.completions(), batch.completions()) << policy;
      EXPECT_EQ(stream.in_flight(), 0u);
    }
  }
}

// Slot recycling: memory tracks the backlog peak, not the stream length.
TEST(Streaming, MemoryTracksBacklogNotStreamLength) {
  auto policy = make_policy("eft-min");
  StreamingEngine engine(4, *policy);
  const ProcSet all = ProcSet::all(4);
  // Widely spaced releases: backlog never exceeds 1.
  for (int i = 0; i < 50000; ++i) {
    engine.release(i * 10.0, 1.0, all);
  }
  EXPECT_EQ(engine.peak_in_flight(), 1u);
  EXPECT_EQ(engine.released(), 50000);
  EXPECT_LT(engine.memory_bytes(), 1u << 20);
}

TEST(Streaming, RejectsDecreasingReleases) {
  auto policy = make_policy("eft-min");
  StreamingEngine engine(2, *policy);
  const ProcSet all = ProcSet::all(2);
  engine.release(5.0, 1.0, all);
  EXPECT_THROW(engine.release(4.0, 1.0, all), std::invalid_argument);
  EXPECT_THROW(engine.release(6.0, 0.0, all), std::invalid_argument);
}

// --- P2 sketches -----------------------------------------------------------

TEST(Sketch, ExactForFirstFiveObservations) {
  P2Quantile q(0.5);
  const std::vector<double> xs = {9.0, 1.0, 5.0, 3.0, 7.0};
  for (double x : xs) q.add(x);
  EXPECT_EQ(q.count(), 5);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);  // exact median of {1,3,5,7,9}
}

TEST(Sketch, UniformQuantilesWithinOnePercent) {
  P2Quantile p50(0.5), p90(0.9), p99(0.99);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform();
    p50.add(x);
    p90.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.value(), 0.50, 0.01);
  EXPECT_NEAR(p90.value(), 0.90, 0.01);
  EXPECT_NEAR(p99.value(), 0.99, 0.01);
}

TEST(Sketch, ExponentialTailWithinFivePercent) {
  // Heavier tail than uniform; p99 of Exp(1) = ln(100) ~ 4.605.
  P2Quantile p99(0.99);
  Rng rng(4);
  for (int i = 0; i < 200000; ++i) p99.add(rng.exponential(1.0));
  EXPECT_NEAR(p99.value(), 4.60517, 0.05 * 4.60517);
}

TEST(Sketch, StreamingQuantilesKeepExactMeanMinMax) {
  StreamingQuantiles sq;
  Rng rng(5);
  double sum = 0, lo = 1e300, hi = -1e300;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(2.0, 9.0);
    sq.add(x);
    sum += x;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_EQ(sq.count(), 10000);
  EXPECT_DOUBLE_EQ(sq.mean(), sum / 10000);
  EXPECT_DOUBLE_EQ(sq.min(), lo);
  EXPECT_DOUBLE_EQ(sq.max(), hi);
  EXPECT_LE(sq.p50(), sq.p90());
  EXPECT_LE(sq.p90(), sq.p99());
  EXPECT_LE(sq.p99(), sq.p999());
  EXPECT_GE(sq.p50(), lo);
  EXPECT_LE(sq.p999(), hi);
}

// --- simulate_cluster_streaming -------------------------------------------

StoreConfig small_store(int m) {
  StoreConfig config;
  config.m = m;
  config.keys = 40 * m;
  config.zipf_s = 0.8;
  config.k = 3;
  return config;
}

// Field-for-field equality with the batch simulator on every cell of a
// seeded grid — the exact-quantile regime is *the same code* fed the same
// draws, so this is ==, not NEAR.
TEST(Streaming, ClusterReportMatchesBatchFieldForField) {
  for (int m : {4, 16}) {
    for (ServiceDist dist : {ServiceDist::kConstant, ServiceDist::kExponential,
                             ServiceDist::kUniform}) {
      for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
        SimConfig batch_config;
        batch_config.lambda = 0.6 * m;
        batch_config.requests = 3000;
        batch_config.dist = dist;
        StreamConfig stream_config;
        stream_config.lambda = batch_config.lambda;
        stream_config.requests = batch_config.requests;
        stream_config.dist = dist;

        Rng batch_rng(seed);
        KeyValueStore batch_store(small_store(m), batch_rng);
        auto batch_policy = make_policy("eft-min");
        const SimReport batch = simulate_cluster(batch_store, batch_config,
                                                 *batch_policy, batch_rng);

        Rng stream_rng(seed);
        KeyValueStore stream_store(small_store(m), stream_rng);
        auto stream_policy = make_policy("eft-min");
        const StreamReport stream = simulate_cluster_streaming(
            stream_store, stream_config, *stream_policy, stream_rng);

        EXPECT_TRUE(stream.exact_quantiles);
        EXPECT_EQ(stream.sim.requests, batch.requests);
        EXPECT_EQ(stream.sim.mean_latency, batch.mean_latency);
        EXPECT_EQ(stream.sim.p50, batch.p50);
        EXPECT_EQ(stream.sim.p90, batch.p90);
        EXPECT_EQ(stream.sim.p99, batch.p99);
        EXPECT_EQ(stream.sim.max_latency, batch.max_latency);
        EXPECT_EQ(stream.sim.makespan, batch.makespan);
        EXPECT_EQ(stream.sim.utilization, batch.utilization);
        // The one-line reports must also agree byte-for-byte.
        EXPECT_EQ(stream.sim.str(), batch.str());
      }
    }
  }
}

// Past the exact cap the sketches engage; mean and max stay exact, the
// sketched quantiles stay within a few percent of the batch truth.
TEST(Streaming, SketchRegimeStaysCloseToBatchQuantiles) {
  const int m = 8;
  SimConfig batch_config;
  batch_config.lambda = 0.6 * m;
  batch_config.requests = 40000;
  batch_config.dist = ServiceDist::kExponential;
  StreamConfig stream_config;
  stream_config.lambda = batch_config.lambda;
  stream_config.requests = batch_config.requests;
  stream_config.dist = batch_config.dist;
  stream_config.exact_quantile_cap = 1000;  // force the sketch path

  Rng batch_rng(21);
  KeyValueStore batch_store(small_store(m), batch_rng);
  auto batch_policy = make_policy("eft-min");
  const SimReport batch =
      simulate_cluster(batch_store, batch_config, *batch_policy, batch_rng);

  Rng stream_rng(21);
  KeyValueStore stream_store(small_store(m), stream_rng);
  auto stream_policy = make_policy("eft-min");
  const StreamReport stream = simulate_cluster_streaming(
      stream_store, stream_config, *stream_policy, stream_rng);

  EXPECT_FALSE(stream.exact_quantiles);
  EXPECT_EQ(stream.sim.mean_latency, batch.mean_latency);
  EXPECT_EQ(stream.sim.max_latency, batch.max_latency);
  EXPECT_EQ(stream.sim.makespan, batch.makespan);
  EXPECT_NEAR(stream.sim.p50, batch.p50, 0.05 * batch.p50 + 0.02);
  EXPECT_NEAR(stream.sim.p90, batch.p90, 0.05 * batch.p90 + 0.02);
  EXPECT_NEAR(stream.sim.p99, batch.p99, 0.08 * batch.p99 + 0.02);
  EXPECT_LE(stream.p999, stream.sim.max_latency);
  EXPECT_GE(stream.p999, stream.sim.p99 * 0.8);
}

// Same seed, two runs: the deterministic report is byte-identical (the
// thread-count invariance ctest builds on exactly this property).
TEST(Streaming, ReportIsDeterministic) {
  const auto run = [] {
    Rng rng(33);
    KeyValueStore store(small_store(8), rng);
    auto policy = make_policy("eft-min");
    StreamConfig config;
    config.lambda = 5.0;
    config.requests = 5000;
    return simulate_cluster_streaming(store, config, *policy, rng).str();
  };
  EXPECT_EQ(run(), run());
}

// --- StreamAuditor ---------------------------------------------------------

TEST(StreamAudit, CleanOnRealStreamingRun) {
  Rng rng(44);
  KeyValueStore store(small_store(8), rng);
  auto policy = make_policy("eft-min");
  StreamConfig config;
  config.lambda = 5.0;
  config.requests = 8000;
  StreamAuditConfig audit_config;
  audit_config.horizon = 32.0;
  StreamAuditor auditor(audit_config);
  const StreamReport report =
      simulate_cluster_streaming(store, config, *policy, rng, &auditor);
  EXPECT_TRUE(auditor.ok()) << auditor.violations().front();
  EXPECT_EQ(auditor.tasks_seen(), 8000);
  // Windowed retention: far fewer records held than tasks seen.
  EXPECT_LT(auditor.peak_window_size(), 8000u);
  EXPECT_LE(auditor.window_max_flow(), report.sim.max_latency);
}

TEST(StreamAudit, CleanAcrossPoliciesOnStructuredInstances) {
  StructuredInstanceOptions opts;
  opts.max_n = 40;
  for (const std::string& policy_name : kPolicies) {
    Rng rng(55);
    const Instance inst =
        random_structured_instance(FuzzStructure::kNested, opts, rng);
    auto policy = make_policy(policy_name);
    StreamingEngine engine(inst.m(), *policy);
    StreamAuditor auditor;
    auditor.on_run_begin(RunInfo{inst.m(), policy->name(), {}});
    engine.set_observer(&auditor);
    double makespan = 0;
    for (const Task& t : inst.tasks()) {
      const Assignment a = engine.release(t);
      makespan = std::max(makespan, a.start + t.proc);
    }
    engine.drain();
    auditor.on_run_end(makespan);
    EXPECT_TRUE(auditor.ok())
        << policy_name << ": " << auditor.violations().front();
  }
}

// Hand-fed event streams: each check family fires on its defect.
class StreamAuditViolations : public ::testing::Test {
 protected:
  void begin(const std::string& algo = "EFT-Min") {
    auditor_.on_run_begin(RunInfo{2, algo, {}});
    eligible_ = ProcSet::all(2);
  }
  ObsEvent released(int task, double time) {
    ObsEvent e;
    e.kind = ObsEventKind::kTaskReleased;
    e.time = time;
    e.task = task;
    e.release = time;
    e.proc = 1.0;
    e.eligible = &eligible_;
    return e;
  }
  ObsEvent milestone(ObsEventKind kind, int task, double time, int machine) {
    ObsEvent e;
    e.kind = kind;
    e.time = time;
    e.task = task;
    e.machine = machine;
    e.release = 0.0;
    e.proc = 1.0;
    return e;
  }
  bool has_tag(const std::string& tag) const {
    for (const std::string& v : auditor_.violations()) {
      if (v.find(tag) != std::string::npos) return true;
    }
    return false;
  }
  StreamAuditor auditor_;
  ProcSet eligible_;
};

TEST_F(StreamAuditViolations, EligibilityOutsideProcessingSet) {
  begin();
  auditor_.on_event(released(0, 0.0));
  auditor_.on_event(milestone(ObsEventKind::kTaskDispatched, 0, 0.0, 7));
  EXPECT_TRUE(has_tag("[stream-eligibility]"));
}

TEST_F(StreamAuditViolations, AccountingWrongStart) {
  begin("Random");  // non-EFT: isolate the accounting check
  auditor_.on_event(released(0, 0.0));
  auditor_.on_event(milestone(ObsEventKind::kTaskDispatched, 0, 0.0, 1));
  auditor_.on_event(milestone(ObsEventKind::kTaskStarted, 0, 0.5, 1));
  EXPECT_TRUE(has_tag("[stream-accounting]"));
}

TEST_F(StreamAuditViolations, WorkConservationLateStart) {
  begin("EFT-Min");
  auditor_.on_event(released(0, 0.0));
  auditor_.on_event(milestone(ObsEventKind::kTaskDispatched, 0, 0.0, 0));
  auditor_.on_event(milestone(ObsEventKind::kTaskStarted, 0, 0.0, 0));
  auditor_.on_event(milestone(ObsEventKind::kTaskCompleted, 0, 1.0, 0));
  // Machine 1 is free at t=0; starting task 1 at t=1 wastes it.
  auditor_.on_event(released(1, 0.0));
  auditor_.on_event(milestone(ObsEventKind::kTaskDispatched, 1, 0.0, 0));
  auditor_.on_event(milestone(ObsEventKind::kTaskStarted, 1, 1.0, 0));
  EXPECT_TRUE(has_tag("[stream-work-conservation]"));
  EXPECT_FALSE(has_tag("[stream-accounting]"));  // start matched its machine
}

TEST_F(StreamAuditViolations, ProtocolOutOfOrderMilestones) {
  begin();
  auditor_.on_event(released(0, 0.0));
  auditor_.on_event(milestone(ObsEventKind::kTaskStarted, 0, 0.0, 0));
  EXPECT_TRUE(has_tag("[stream-protocol]"));
}

TEST_F(StreamAuditViolations, ProtocolDecreasingReleases) {
  begin();
  auditor_.on_event(released(0, 5.0));
  auditor_.on_event(milestone(ObsEventKind::kTaskDispatched, 0, 5.0, 0));
  auditor_.on_event(milestone(ObsEventKind::kTaskStarted, 0, 5.0, 0));
  auditor_.on_event(milestone(ObsEventKind::kTaskCompleted, 0, 6.0, 0));
  auditor_.on_event(released(1, 4.0));
  EXPECT_TRUE(has_tag("[stream-protocol]"));
}

TEST_F(StreamAuditViolations, RunEndMidTask) {
  begin();
  auditor_.on_event(released(0, 0.0));
  auditor_.on_run_end(1.0);
  EXPECT_TRUE(has_tag("[stream-protocol]"));
}

}  // namespace
}  // namespace flowsched
