#include "sched/fifo.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace flowsched {
namespace {

TEST(Fifo, SingleMachineProcessesInOrder) {
  const auto inst = Instance::unrestricted(1, {{0, 2}, {1, 1}, {1, 1}});
  const auto sched = fifo_schedule(inst);
  EXPECT_TRUE(sched.validate().ok());
  EXPECT_DOUBLE_EQ(sched.start(0), 0.0);
  EXPECT_DOUBLE_EQ(sched.start(1), 2.0);
  EXPECT_DOUBLE_EQ(sched.start(2), 3.0);
}

TEST(Fifo, UsesIdleMachineImmediately) {
  const auto inst = Instance::unrestricted(2, {{0, 10}, {3, 1}});
  const auto sched = fifo_schedule(inst);
  EXPECT_EQ(sched.machine(1), 1);
  EXPECT_DOUBLE_EQ(sched.start(1), 3.0);
}

TEST(Fifo, QueueHoldsWhenAllBusy) {
  const auto inst = Instance::unrestricted(2, {{0, 5}, {0, 5}, {1, 1}});
  const auto sched = fifo_schedule(inst);
  EXPECT_DOUBLE_EQ(sched.start(2), 5.0);  // waits for a machine to free
  EXPECT_DOUBLE_EQ(sched.flow(2), 5.0);
}

TEST(Fifo, RejectsRestrictedInstances) {
  std::vector<Task> tasks{{.release = 0, .proc = 1, .eligible = ProcSet({0})}};
  const Instance inst(2, std::move(tasks));
  EXPECT_THROW(fifo_schedule(inst), std::invalid_argument);
}

TEST(Fifo, MinAndMaxTieBreaksDiffer) {
  const auto inst = Instance::unrestricted(2, {{0, 1}});
  EXPECT_EQ(fifo_schedule(inst, TieBreakKind::kMin).machine(0), 0);
  EXPECT_EQ(fifo_schedule(inst, TieBreakKind::kMax).machine(0), 1);
}

TEST(Fifo, IdleGapThenBurst) {
  // A long idle gap between batches must not confuse the event loop.
  const auto inst =
      Instance::unrestricted(2, {{0, 1}, {100, 1}, {100, 1}, {100, 1}});
  const auto sched = fifo_schedule(inst);
  EXPECT_TRUE(sched.validate().ok());
  EXPECT_DOUBLE_EQ(sched.start(1), 100.0);
  EXPECT_DOUBLE_EQ(sched.start(2), 100.0);
  EXPECT_DOUBLE_EQ(sched.start(3), 101.0);
}

TEST(FifoEligible, RespectsProcessingSets) {
  std::vector<Task> tasks{
      {.release = 0, .proc = 2, .eligible = ProcSet({0})},
      {.release = 0, .proc = 1, .eligible = ProcSet({0})},  // must wait on M0
      {.release = 0, .proc = 1, .eligible = ProcSet({1})},
  };
  const Instance inst(2, std::move(tasks));
  const auto sched = fifo_eligible_schedule(inst);
  EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
  EXPECT_EQ(sched.machine(1), 0);
  EXPECT_DOUBLE_EQ(sched.start(1), 2.0);
  EXPECT_DOUBLE_EQ(sched.start(2), 0.0);
}

TEST(FifoEligible, SkipsBlockedHeadOfLine) {
  // Head task only runs on busy M0; a later task eligible on idle M1 must
  // not be starved behind it.
  std::vector<Task> tasks{
      {.release = 0, .proc = 10, .eligible = ProcSet({0})},
      {.release = 1, .proc = 1, .eligible = ProcSet({0})},
      {.release = 2, .proc = 1, .eligible = ProcSet({1})},
  };
  const Instance inst(2, std::move(tasks));
  const auto sched = fifo_eligible_schedule(inst);
  EXPECT_DOUBLE_EQ(sched.start(2), 2.0);
  EXPECT_DOUBLE_EQ(sched.start(1), 10.0);
}

TEST(FifoEligible, MatchesFifoOnUnrestrictedInstances) {
  Rng rng(17);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 60;
  const auto inst = random_instance(opts, rng);
  const auto a = fifo_schedule(inst, TieBreakKind::kMin);
  const auto b = fifo_eligible_schedule(inst, TieBreakKind::kMin);
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_DOUBLE_EQ(a.start(i), b.start(i)) << "task " << i;
    EXPECT_EQ(a.machine(i), b.machine(i)) << "task " << i;
  }
}

TEST(FifoEligible, ValidOnRandomRestrictedInstances) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions opts;
    opts.m = 5;
    opts.n = 80;
    opts.sets = RandomSets::kArbitrary;
    const auto inst = random_instance(opts, rng);
    const auto sched = fifo_eligible_schedule(inst);
    EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
  }
}

}  // namespace
}  // namespace flowsched
