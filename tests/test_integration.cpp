// Cross-module integration tests: the paper's experimental pipeline end to
// end, plus qualitative claims of the evaluation section at reduced scale.
#include <gtest/gtest.h>

#include "kvstore/cluster_sim.hpp"
#include "lp/maxload.hpp"
#include "offline/lower_bounds.hpp"
#include "sched/engine.hpp"
#include "sched/fifo.hpp"
#include "util/stats.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

// Theorem 1: FIFO (== EFT) stays within (3 - 2/m) * OPT. We compare against
// the certified lower bound, which can only overestimate the ratio.
TEST(Integration, FifoRatioWithinTheorem1Bound) {
  Rng rng(101);
  for (int m : {2, 3, 5}) {
    for (int trial = 0; trial < 5; ++trial) {
      RandomInstanceOptions opts;
      opts.m = m;
      opts.n = 40;
      opts.max_release = 10.0;
      const auto inst = random_instance(opts, rng);
      const auto sched = fifo_schedule(inst);
      const double lb = opt_lower_bound(inst);
      ASSERT_GT(lb, 0.0);
      EXPECT_LE(sched.max_flow() / lb, 3.0 - 2.0 / m + 1e-9)
          << "m=" << m << " trial=" << trial;
    }
  }
}

// Figure 11's qualitative claim at reduced scale: under Zipf bias and
// moderate-to-high load, overlapping replication yields a lower Fmax than
// disjoint replication for EFT.
TEST(Integration, OverlappingBeatsDisjointUnderBias) {
  const int m = 15;
  const int k = 3;
  const double lambda = 0.6 * m;
  double fmax_overlapping = 0;
  double fmax_disjoint = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng pop_rng(900 + seed);
    const auto pop = make_popularity(PopularityCase::kShuffled, m, 1.0, pop_rng);
    for (auto strategy :
         {ReplicationStrategy::kOverlapping, ReplicationStrategy::kDisjoint}) {
      KvWorkloadConfig config;
      config.m = m;
      config.n = 4000;
      config.lambda = lambda;
      config.strategy = strategy;
      config.k = k;
      Rng rng(1000 + seed);
      const auto inst = generate_kv_instance(config, pop, rng);
      EftDispatcher eft(TieBreakKind::kMin);
      const auto sched = run_dispatcher(inst, eft);
      (strategy == ReplicationStrategy::kOverlapping ? fmax_overlapping
                                                     : fmax_disjoint) +=
          sched.max_flow();
    }
  }
  EXPECT_LE(fmax_overlapping, fmax_disjoint);
}

// The LP max-load threshold predicts simulation saturation: a run offered
// less than the LP load keeps latencies bounded, one offered more than the
// unreplicated bottleneck load diverges.
TEST(Integration, LpMaxLoadPredictsSaturation) {
  const int m = 8;
  const int k = 2;
  Rng pop_rng(55);
  const auto pop = make_popularity(PopularityCase::kWorstCase, m, 1.0, pop_rng);
  const auto sets = replica_sets(ReplicationStrategy::kOverlapping, k, m);
  const double lambda_star = max_load_lp(pop, sets).lambda;
  ASSERT_GT(lambda_star, 0.0);
  ASSERT_LT(lambda_star, m + 1e-9);

  auto run_at = [&](double lambda) {
    KvWorkloadConfig config;
    config.m = m;
    config.n = 6000;
    config.lambda = lambda;
    config.strategy = ReplicationStrategy::kOverlapping;
    config.k = k;
    Rng rng(77);
    const auto inst = generate_kv_instance(config, pop, rng);
    EftDispatcher eft(TieBreakKind::kMin);
    return run_dispatcher(inst, eft).max_flow();
  };

  const double under = run_at(0.7 * lambda_star);
  const double over = run_at(1.6 * lambda_star);
  EXPECT_LT(under, over);
  EXPECT_GT(over, 20.0);  // saturated: flows grow with the backlog
}

// The kvstore layer and the raw generator must tell the same story: the
// machine popularity induced by the store feeds the LP, and the sustainable
// load matches a direct simulation through the store.
TEST(Integration, StorePopularityFeedsLp) {
  StoreConfig sc;
  sc.m = 6;
  sc.keys = 120;
  sc.zipf_s = 1.0;
  sc.strategy = ReplicationStrategy::kOverlapping;
  sc.k = 3;
  Rng rng(31);
  const KeyValueStore store(sc, rng);
  const auto sets = replica_sets(sc.strategy, sc.k, sc.m);
  const double lam = max_load_lp(store.machine_popularity(), sets).lambda;
  EXPECT_GT(lam, 0.0);
  EXPECT_LE(lam, 6.0 + 1e-9);

  SimConfig sim;
  sim.lambda = 0.5 * lam;
  sim.requests = 4000;
  EftDispatcher eft(TieBreakKind::kMin);
  Rng sim_rng(32);
  const auto report = simulate_cluster(store, sim, eft, sim_rng);
  EXPECT_LT(report.p99, 30.0);  // below the threshold: no divergence
}

// EFT-Max vs EFT-Min under the Worst-case popularity (Figure 11, right
// facet): with overlapping intervals and sorted-decreasing bias, EFT-Max
// should not be worse than EFT-Min on average.
TEST(Integration, EftMaxHelpsUnderWorstCaseBias) {
  const int m = 15;
  const int k = 3;
  Rng pop_rng(41);
  const auto pop = make_popularity(PopularityCase::kWorstCase, m, 1.0, pop_rng);
  double min_total = 0;
  double max_total = 0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    KvWorkloadConfig config;
    config.m = m;
    config.n = 5000;
    config.lambda = 0.5 * m;
    config.strategy = ReplicationStrategy::kOverlapping;
    config.k = k;
    Rng rng_min(500 + seed);
    Rng rng_max(500 + seed);  // identical workload for both policies
    const auto inst_min = generate_kv_instance(config, pop, rng_min);
    const auto inst_max = generate_kv_instance(config, pop, rng_max);
    EftDispatcher min_d(TieBreakKind::kMin);
    EftDispatcher max_d(TieBreakKind::kMax);
    min_total += run_dispatcher(inst_min, min_d).max_flow();
    max_total += run_dispatcher(inst_max, max_d).max_flow();
  }
  EXPECT_LE(max_total, min_total + 1e-9);
}

}  // namespace
}  // namespace flowsched
