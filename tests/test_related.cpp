#include "qsched/related.hpp"

#include <gtest/gtest.h>

#include "sched/engine.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

TEST(RelatedGreedy, PrefersFastMachine) {
  // Speeds (1, 4): the fast machine finishes a length-4 task in 1 unit.
  const auto inst = Instance::unrestricted(2, {{0.0, 4.0}});
  QGreedyDispatcher greedy;
  const auto run = run_related(inst, {1.0, 4.0}, greedy);
  EXPECT_EQ(run.schedule.machine(0), 1);
  EXPECT_DOUBLE_EQ(run.max_flow, 1.0);
}

TEST(RelatedGreedy, BalancesWhenFastIsBusy) {
  // Two length-4 tasks at t=0 with speeds (1, 4): second task finishes
  // sooner queued on the fast machine (2) than alone on the slow one (4).
  const auto inst = Instance::unrestricted(2, {{0.0, 4.0}, {0.0, 4.0}});
  QGreedyDispatcher greedy;
  const auto run = run_related(inst, {1.0, 4.0}, greedy);
  EXPECT_EQ(run.schedule.machine(0), 1);
  EXPECT_EQ(run.schedule.machine(1), 1);
  EXPECT_DOUBLE_EQ(run.max_flow, 2.0);
}

TEST(RelatedGreedy, UnitSpeedsReduceToEft) {
  Rng rng(5);
  RandomInstanceOptions opts;
  opts.m = 4;
  opts.n = 60;
  opts.sets = RandomSets::kIntervals;
  const auto inst = random_instance(opts, rng);
  QGreedyDispatcher greedy;
  const auto run = run_related(inst, {1.0, 1.0, 1.0, 1.0}, greedy);
  EftDispatcher eft(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, eft);
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(run.schedule.machine(i), sched.machine(i)) << "task " << i;
    EXPECT_NEAR(run.schedule.start(i), sched.start(i), 1e-9);
  }
}

TEST(RelatedSlowFit, UsesSlowestFeasibleMachine) {
  // First task seeds the estimate at p/s_max = 1.0 (budget 2.0): the slow
  // machine (delay 10) does not fit, the fast one does. A later small task
  // (delay 1 on the slow machine) fits the standing budget, so Slow-Fit
  // sends it to the SLOWEST feasible machine.
  const auto inst = Instance::unrestricted(2, {{0.0, 10.0}, {20.0, 1.0}});
  QSlowFitDispatcher slowfit(2.0);
  const auto run = run_related(inst, {1.0, 10.0}, slowfit);
  EXPECT_EQ(run.schedule.machine(0), 1);  // only the fast machine fits
  EXPECT_EQ(run.schedule.machine(1), 0);  // slow machine now qualifies
}

TEST(RelatedSlowFit, EstimateDoublesMonotonically) {
  const auto inst = Instance::unrestricted(2, {{0.0, 1.0}, {0.0, 8.0}});
  QSlowFitDispatcher slowfit(2.0);
  run_related(inst, {1.0, 4.0}, slowfit);
  EXPECT_GT(slowfit.estimate(), 0.0);
}

// Slow-Fit's failure mode: a single large task inflates the estimate; the
// following stream of small tasks then "fits" on very slow machines within
// the inflated budget, building deep backlogs the fast machine would have
// absorbed trivially.
Instance slowfit_trap() {
  std::vector<std::pair<double, double>> pairs;
  pairs.emplace_back(0.0, 40.0);  // estimate seeds at 40/4 = 10, budget 20
  for (int i = 0; i < 60; ++i) pairs.emplace_back(50.0 + i, 1.0);
  return Instance::unrestricted(2, std::move(pairs));
}

TEST(RelatedSlowFit, PilesOntoSlowMachines) {
  const std::vector<double> speeds{0.1, 4.0};
  QSlowFitDispatcher slowfit(2.0);
  QGreedyDispatcher greedy;
  const auto sf = run_related(slowfit_trap(), speeds, slowfit);
  const auto gd = run_related(slowfit_trap(), speeds, greedy);
  // Greedy's Fmax is the big task alone (40/4 = 10); Slow-Fit lets the
  // small-task backlog on the 0.1-speed machine grow to ~2x the budget.
  EXPECT_DOUBLE_EQ(gd.max_flow, 10.0);
  EXPECT_GT(sf.max_flow, 1.8 * gd.max_flow);
}

TEST(RelatedDoubleFit, StaysCloseToGreedyOnSlowFitsBadCase) {
  // The greedy safety cap (delay <= 2 * greedy option) prevents Double-Fit
  // from drowning the slow machine the way Slow-Fit does.
  const std::vector<double> speeds{0.1, 4.0};
  QDoubleFitDispatcher doublefit;
  QGreedyDispatcher greedy;
  QSlowFitDispatcher slowfit(2.0);
  const auto df = run_related(slowfit_trap(), speeds, doublefit);
  const auto gd = run_related(slowfit_trap(), speeds, greedy);
  const auto sf = run_related(slowfit_trap(), speeds, slowfit);
  EXPECT_LE(df.max_flow, 1.5 * gd.max_flow);
  EXPECT_LT(df.max_flow, sf.max_flow);
}

TEST(RelatedDispatchers, AllRespectProcessingSets) {
  Rng rng(9);
  RandomInstanceOptions opts;
  opts.m = 5;
  opts.n = 80;
  opts.sets = RandomSets::kArbitrary;
  const auto inst = random_instance(opts, rng);
  const std::vector<double> speeds{0.5, 1.0, 1.5, 2.0, 3.0};
  QGreedyDispatcher greedy;
  QSlowFitDispatcher slowfit;
  QDoubleFitDispatcher doublefit;
  for (RelatedDispatcher* d :
       {static_cast<RelatedDispatcher*>(&greedy),
        static_cast<RelatedDispatcher*>(&slowfit),
        static_cast<RelatedDispatcher*>(&doublefit)}) {
    const auto run = run_related(inst, speeds, *d);
    for (int i = 0; i < inst.n(); ++i) {
      EXPECT_TRUE(inst.task(i).eligible.contains(run.schedule.machine(i)))
          << d->name() << " task " << i;
      EXPECT_GE(run.schedule.start(i), inst.task(i).release - 1e-9);
    }
  }
}

TEST(RelatedDispatchers, FlowsAboveCertifiedLowerBound) {
  Rng rng(13);
  RandomInstanceOptions opts;
  opts.m = 3;
  opts.n = 40;
  const auto inst = random_instance(opts, rng);
  const std::vector<double> speeds{0.5, 1.0, 2.0};
  const double lb = related_opt_lower_bound(inst, speeds);
  ASSERT_GT(lb, 0.0);
  QGreedyDispatcher greedy;
  QSlowFitDispatcher slowfit;
  QDoubleFitDispatcher doublefit;
  for (RelatedDispatcher* d :
       {static_cast<RelatedDispatcher*>(&greedy),
        static_cast<RelatedDispatcher*>(&slowfit),
        static_cast<RelatedDispatcher*>(&doublefit)}) {
    const auto run = run_related(inst, speeds, *d);
    EXPECT_GE(run.max_flow, lb - 1e-9) << d->name();
  }
}

TEST(Related, LowerBoundSingleFastMachine) {
  // Work 10 released at once on total speed 2: F >= 5; pmax/s_max = 4/2.
  const auto inst = Instance::unrestricted(2, {{0, 4}, {0, 4}, {0, 2}});
  EXPECT_DOUBLE_EQ(related_opt_lower_bound(inst, {1.0, 1.0}), 5.0);
}

TEST(Related, RejectsBadSpeeds) {
  const auto inst = Instance::unrestricted(2, {{0, 1}});
  QGreedyDispatcher greedy;
  EXPECT_THROW(run_related(inst, {1.0}, greedy), std::invalid_argument);
  EXPECT_THROW(run_related(inst, {1.0, 0.0}, greedy), std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
