#include "kvstore/ring.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/replication.hpp"

namespace flowsched {
namespace {

constexpr int kKeys = 2000;

TEST(RingResize, IdentityResizeMovesNothing) {
  const HashRing ring(8, 16, 42);
  const RingResizeDelta d = ring_resize_delta(ring, kKeys, 3, 3);
  EXPECT_EQ(d.keys_touched, 0);
  EXPECT_EQ(d.keys_moved, 0);
  EXPECT_EQ(d.replicas_added, 0);
  EXPECT_EQ(d.replicas_dropped, 0);
}

// The minimal-movement property of the consistent-hashing resize: the
// preference list at k is a prefix of the list at k+1, so growing k only
// ADDS placements — no key ever loses a held replica.
TEST(RingResize, GrowingKMovesNoKeys) {
  const HashRing ring(9, 8, 7);
  for (int k = 1; k < 9; ++k) {
    const RingResizeDelta d = ring_resize_delta(ring, kKeys, k, k + 1);
    EXPECT_EQ(d.keys_moved, 0) << "k " << k << " -> " << k + 1;
    EXPECT_EQ(d.replicas_dropped, 0) << "k " << k;
    // Exactly one new replica per key: every key is touched and adds one.
    EXPECT_EQ(d.keys_touched, kKeys) << "k " << k;
    EXPECT_EQ(d.replicas_added, kKeys) << "k " << k;
  }
}

// Shrinking is the mirror image: exactly one placement retired per key,
// nothing added, and each touched key counts as moved (it lost a replica).
TEST(RingResize, ShrinkingKDropsOneReplicaPerKey) {
  const HashRing ring(9, 8, 7);
  for (int k = 2; k <= 9; ++k) {
    const RingResizeDelta d = ring_resize_delta(ring, kKeys, k, k - 1);
    EXPECT_EQ(d.replicas_added, 0) << "k " << k;
    EXPECT_EQ(d.replicas_dropped, kKeys) << "k " << k;
    EXPECT_EQ(d.keys_touched, kKeys) << "k " << k;
    EXPECT_EQ(d.keys_moved, kKeys) << "k " << k;
  }
}

// Multi-step jumps still respect the per-key movement bound: growing by d
// adds exactly d placements per key, so keys_moved stays 0 and
// replicas_added == keys * d.
TEST(RingResize, MultiStepGrowthIsPrefixStable) {
  const HashRing ring(7, 4, 3);
  const RingResizeDelta d = ring_resize_delta(ring, kKeys, 2, 5);
  EXPECT_EQ(d.keys_moved, 0);
  EXPECT_EQ(d.replicas_added, static_cast<long long>(kKeys) * 3);
  EXPECT_EQ(d.replicas_dropped, 0);
}

TEST(RingResize, EmptyKeySpaceIsAllZero) {
  const HashRing ring(5, 4, 9);
  const RingResizeDelta d = ring_resize_delta(ring, 0, 1, 5);
  EXPECT_EQ(d.keys_touched, 0);
  EXPECT_EQ(d.keys_moved, 0);
  EXPECT_EQ(d.replicas_added, 0);
  EXPECT_EQ(d.replicas_dropped, 0);
  const RingResizeDelta b = ring_to_blocks_delta(ring, 0, 3, 0, 5);
  EXPECT_EQ(b.keys_touched, 0);
  EXPECT_EQ(b.replicas_added, 0);
}

// k = m: every preference list is the whole cluster, so any resize that
// stays at m is a no-op and a grow INTO m never moves a key.
TEST(RingResize, FullReplicationEdgeCase) {
  const HashRing ring(6, 8, 11);
  const RingResizeDelta up = ring_resize_delta(ring, kKeys, 5, 6);
  EXPECT_EQ(up.keys_moved, 0);
  EXPECT_EQ(up.replicas_added, kKeys);
  const RingResizeDelta same = ring_resize_delta(ring, kKeys, 6, 6);
  EXPECT_EQ(same.keys_touched, 0);
}

// The frontier property the adaptive controller relies on: a layout flip
// migrated slice-by-slice moves, per step, only the keys whose primary
// falls in the slice — and the slices partition the full migration.
TEST(RingResize, BlocksMigrationDecomposesOverFrontierSlices) {
  const int m = 8;
  const HashRing ring(m, 16, 5);
  const RingResizeDelta whole = ring_to_blocks_delta(ring, kKeys, 3, 0, m);
  RingResizeDelta sum;
  for (int lo = 0; lo < m; lo += 2) {
    const RingResizeDelta step = ring_to_blocks_delta(ring, kKeys, 3, lo, lo + 2);
    // Each step touches at most the keys primarily owned by the slice —
    // strictly fewer than the whole migration.
    EXPECT_LE(step.keys_touched, whole.keys_touched);
    sum.keys_touched += step.keys_touched;
    sum.keys_moved += step.keys_moved;
    sum.replicas_added += step.replicas_added;
    sum.replicas_dropped += step.replicas_dropped;
  }
  EXPECT_EQ(sum.keys_touched, whole.keys_touched);
  EXPECT_EQ(sum.keys_moved, whole.keys_moved);
  EXPECT_EQ(sum.replicas_added, whole.replicas_added);
  EXPECT_EQ(sum.replicas_dropped, whole.replicas_dropped);
}

TEST(RingResize, EmptyFrontierSliceMovesNothing) {
  const HashRing ring(6, 8, 13);
  const RingResizeDelta d = ring_to_blocks_delta(ring, kKeys, 2, 3, 3);
  EXPECT_EQ(d.keys_touched, 0);
  EXPECT_EQ(d.keys_moved, 0);
}

// At k = m both layouts place every key everywhere: the flip is free.
TEST(RingResize, BlocksAtFullReplicationIsFree) {
  const int m = 5;
  const HashRing ring(m, 8, 17);
  const RingResizeDelta d = ring_to_blocks_delta(ring, kKeys, m, 0, m);
  EXPECT_EQ(d.keys_touched, 0);
  EXPECT_EQ(d.keys_moved, 0);
}

// A moved key never moves more than its whole replica set: per key at most
// k placements retire, so keys_moved <= keys_touched and
// replicas_dropped <= k * keys_moved.
TEST(RingResize, MovementIsBoundedByReplicationFactor) {
  const int m = 10;
  const int k = 3;
  const HashRing ring(m, 4, 23);
  const RingResizeDelta d = ring_to_blocks_delta(ring, kKeys, k, 0, m);
  EXPECT_LE(d.keys_moved, d.keys_touched);
  EXPECT_LE(d.replicas_dropped, static_cast<long long>(k) * d.keys_moved);
  EXPECT_LE(d.replicas_added, static_cast<long long>(k) * d.keys_touched);
}

TEST(RingResize, RejectsBadArguments) {
  const HashRing ring(4, 4, 1);
  EXPECT_THROW(ring_resize_delta(ring, -1, 1, 2), std::invalid_argument);
  EXPECT_THROW(ring_resize_delta(ring, 10, 0, 2), std::invalid_argument);
  EXPECT_THROW(ring_resize_delta(ring, 10, 1, 5), std::invalid_argument);
  EXPECT_THROW(ring_to_blocks_delta(ring, 10, 2, -1, 4), std::invalid_argument);
  EXPECT_THROW(ring_to_blocks_delta(ring, 10, 2, 0, 5), std::invalid_argument);
  EXPECT_THROW(ring_to_blocks_delta(ring, 10, 2, 3, 2), std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
