#include "control/control.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "check/audit.hpp"
#include "control/adaptive_sim.hpp"
#include "sched/dispatchers.hpp"

namespace flowsched {
namespace {

ControlObservation healthy_obs(int m, double t) {
  ControlObservation obs;
  obs.time = t;
  obs.backlog.assign(static_cast<std::size_t>(m), 0.0);
  obs.up.assign(static_cast<std::size_t>(m), 1);
  obs.arrival_rate = 1.0;
  return obs;
}

TEST(ReplicationController, RejectsBadConstruction) {
  const ControlConfig cfg;
  EXPECT_THROW(ReplicationController(0, LayoutSpec{}, cfg),
               std::invalid_argument);
  EXPECT_THROW(
      ReplicationController(4, LayoutSpec{ReplicationStrategy::kOverlapping, 5},
                            cfg),
      std::invalid_argument);
  ControlConfig bad = cfg;
  bad.period = 0;
  EXPECT_THROW(ReplicationController(4, LayoutSpec{}, bad),
               std::invalid_argument);
  bad = cfg;
  bad.hysteresis = 0.5;
  EXPECT_THROW(ReplicationController(4, LayoutSpec{}, bad),
               std::invalid_argument);
}

TEST(ReplicationController, HoldsSteadyWhenHealthy) {
  ReplicationController ctl(
      4, LayoutSpec{ReplicationStrategy::kOverlapping, 2}, ControlConfig{});
  for (int e = 0; e < 5; ++e) {
    const ControlDecision d =
        ctl.decide(healthy_obs(4, 8.0 * static_cast<double>(e + 1)));
    EXPECT_EQ(d.reason, "hold") << "epoch " << e;
    EXPECT_FALSE(d.switched);
    EXPECT_EQ(d.moved_owners(), 0);
  }
  EXPECT_FALSE(ctl.migrating());
  EXPECT_EQ(ctl.active(), (LayoutSpec{ReplicationStrategy::kOverlapping, 2}));
}

// Disjoint k=1 with machine 0 down: owner 0's set degrades to empty, so the
// incumbent is infeasible and the controller must raise k — incrementally,
// one owner per epoch at m=4 (max_move defaults to max(1, m/4) = 1).
TEST(ReplicationController, RaisesKWhenAFaultStarvesAnOwner) {
  ControlConfig cfg;
  cfg.period = 1.0;
  ReplicationController ctl(4, LayoutSpec{ReplicationStrategy::kDisjoint, 1},
                            cfg);
  ControlObservation obs = healthy_obs(4, 1.0);
  obs.up[0] = 0;

  const ControlDecision d0 = ctl.decide(obs);
  EXPECT_TRUE(d0.switched);
  EXPECT_EQ(d0.reason, "switch");
  EXPECT_EQ(d0.target.k, 2);
  EXPECT_EQ(d0.moved_owners(), 1);
  EXPECT_TRUE(ctl.migrating());
  // Frontier-aware eligibility: owner 0 already serves under the target
  // layout, the rest still under the old one.
  EXPECT_EQ(ctl.eligible_for_owner(0),
            replica_set(ReplicationStrategy::kDisjoint, 0, 2, 4));
  EXPECT_EQ(ctl.eligible_for_owner(3),
            replica_set(ReplicationStrategy::kDisjoint, 3, 1, 4));

  // The migration drains one owner per epoch, then cooldown holds.
  for (int e = 0; e < 3; ++e) {
    obs.time += 1.0;
    const ControlDecision d = ctl.decide(obs);
    EXPECT_EQ(d.reason, "migrate") << "epoch " << d.epoch;
    EXPECT_EQ(d.moved_owners(), 1);
  }
  EXPECT_FALSE(ctl.migrating());
  EXPECT_EQ(ctl.active().k, 2);
  obs.time += 1.0;
  EXPECT_EQ(ctl.decide(obs).reason, "cooldown");
}

TEST(ReplicationController, OracleBudgetOverrunFallsBackNotSwitches) {
  ControlConfig cfg;
  cfg.period = 1.0;
  cfg.lp_pivot_cap = 1;  // starve the oracle: every solve "times out"
  ReplicationController ctl(
      6, LayoutSpec{ReplicationStrategy::kOverlapping, 2}, cfg);
  const ControlDecision d = ctl.decide(healthy_obs(6, 1.0));
  EXPECT_TRUE(d.fallback);
  EXPECT_EQ(d.reason, "fallback");
  // Last known-good is the initial layout, so nothing migrates.
  EXPECT_FALSE(d.switched);
  EXPECT_FALSE(ctl.migrating());
  EXPECT_EQ(ctl.active(), (LayoutSpec{ReplicationStrategy::kOverlapping, 2}));
}

TEST(ReplicationController, DecisionsReplayBitwise) {
  ControlConfig cfg;
  cfg.period = 2.0;
  const LayoutSpec initial{ReplicationStrategy::kDisjoint, 1};
  ReplicationController live(5, initial, cfg);
  std::vector<ControlObservation> observed;
  std::vector<std::string> decided;
  for (int e = 0; e < 8; ++e) {
    ControlObservation obs = healthy_obs(5, 2.0 * static_cast<double>(e + 1));
    if (e >= 2) obs.up[1] = 0;  // mid-run crash
    obs.arrival_rate = 0.5 * static_cast<double>(e);
    observed.push_back(obs);
    decided.push_back(live.decide(obs).str());
  }
  ReplicationController replay(5, initial, cfg);
  for (std::size_t e = 0; e < observed.size(); ++e) {
    EXPECT_EQ(replay.decide(observed[e]).str(), decided[e]) << "epoch " << e;
  }
}

ControlCase small_case(bool faulty) {
  ControlCase c;
  c.m = 4;
  c.initial = LayoutSpec{ReplicationStrategy::kDisjoint, 1};
  c.control.period = 1.0;
  c.control.cooldown = 1;
  c.control.setup_cost = 0.25;
  for (int i = 0; i < 24; ++i) {
    c.release.push_back(0.5 * static_cast<double>(i));
    c.proc.push_back(0.5);
    c.key.push_back(i);
  }
  if (faulty) {
    FaultPlan plan(4);
    plan.add_down(0, 0.5, 9.0);
    c.plan = plan;
  }
  return c;
}

TEST(AdaptiveSim, ControllerOffEqualsStaticPath) {
  for (const bool faulty : {false, true}) {
    const ControlCase c = small_case(faulty);
    EftDispatcher d_off(TieBreakKind::kMin);
    const AdaptiveRunReport off = run_adaptive(c, d_off, /*enabled=*/false);
    EftDispatcher d_static(TieBreakKind::kMin);
    const AdaptiveRunReport stat = run_static(c, d_static);
    EXPECT_EQ(off.flows, stat.flows) << "faulty=" << faulty;
    EXPECT_EQ(off.fmax, stat.fmax);
    EXPECT_EQ(off.makespan, stat.makespan);
    EXPECT_EQ(off.completed, stat.completed);
    EXPECT_EQ(off.str(), stat.str());
    EXPECT_EQ(off.decisions, 0);
    EXPECT_EQ(off.setup_total, 0.0);
  }
}

// A crash that starves owner 0 under disjoint k=1 forces a switch; the run
// must record decisions, migrate incrementally, and charge setup on moved
// owners — and the audit must replay the whole log cleanly.
TEST(AdaptiveSim, FaultTriggersAuditedSwitchWithSetupCharges) {
  const ControlCase c = small_case(/*faulty=*/true);
  AuditConfig acfg;
  acfg.fault_mode = true;
  acfg.infer_from_algo = false;
  InvariantAuditor auditor(acfg);
  EftDispatcher d(TieBreakKind::kMin);
  const AdaptiveRunReport rep = run_adaptive(c, d, /*enabled=*/true, &auditor);
  EXPECT_GT(rep.decisions, 0);
  EXPECT_GT(rep.switches, 0);
  EXPECT_GT(rep.setup_total, 0.0);
  EXPECT_EQ(rep.final_layout.k, 2);
  auditor.check_control_run(rep.log, c.control, c.m, c.initial);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  // Every charge names an owner some decision actually moved.
  for (const ControlLog::SetupCharge& ch : rep.log.charges()) {
    EXPECT_EQ(ch.amount, c.control.setup_cost);
    bool moved = false;
    for (const ControlDecision& dec : rep.log.decisions()) {
      if (dec.epoch == ch.epoch && ch.owner >= dec.moved_lo &&
          ch.owner < dec.moved_hi) {
        moved = true;
      }
    }
    EXPECT_TRUE(moved) << "owner " << ch.owner << " epoch " << ch.epoch;
  }
}

TEST(AdaptiveSim, PlantedFlapIsCaughtByTheAudit) {
  const ControlCase c = small_case(/*faulty=*/false);
  AuditConfig acfg;
  acfg.infer_from_algo = false;
  InvariantAuditor auditor(acfg);
  EftDispatcher d(TieBreakKind::kMin);
  const AdaptiveRunReport rep = run_adaptive(c, d, /*enabled=*/true, &auditor,
                                             /*unsafe_flap=*/true);
  ASSERT_GT(rep.decisions, 0);
  auditor.check_control_run(rep.log, c.control, c.m, c.initial);
  EXPECT_FALSE(auditor.ok());
  bool control_tag = false;
  for (const std::string& v : auditor.violations()) {
    if (v.find("[control-") != std::string::npos) control_tag = true;
  }
  EXPECT_TRUE(control_tag) << auditor.report();
}

TEST(AdaptiveSim, ReportAppendsControlFieldsOnlyWhenDecisionsExist) {
  const ControlCase c = small_case(/*faulty=*/false);
  EftDispatcher d1(TieBreakKind::kMin);
  const AdaptiveRunReport on = run_adaptive(c, d1, /*enabled=*/true);
  EftDispatcher d2(TieBreakKind::kMin);
  const AdaptiveRunReport off = run_adaptive(c, d2, /*enabled=*/false);
  EXPECT_NE(on.str().find("decisions="), std::string::npos);
  EXPECT_EQ(off.str().find("decisions="), std::string::npos);
}

}  // namespace
}  // namespace flowsched
