#include "bounds/bounds.hpp"

#include <gtest/gtest.h>

#include "adversary/inclusive.hpp"
#include "adversary/interval2.hpp"
#include "adversary/ksize.hpp"
#include "adversary/nested.hpp"
#include "adversary/smalltask.hpp"
#include "adversary/th8_stream.hpp"
#include "bounds/planner.hpp"
#include "check/fuzz.hpp"
#include "sched/dispatchers.hpp"

namespace flowsched {
namespace {

using bounds::AlgoClass;
using bounds::BoundCell;
using bounds::BoundQuery;
using bounds::StructureClass;

// --- Closed forms -----------------------------------------------------------

TEST(Bounds, Theorem1RatioExact) {
  EXPECT_EQ(bounds::theorem1_ratio(1), Rational(1));
  EXPECT_EQ(bounds::theorem1_ratio(2), Rational(2));
  EXPECT_EQ(bounds::theorem1_ratio(4), Rational(5, 2));
  EXPECT_EQ(bounds::theorem1_ratio(16), Rational(23, 8));
  // Ceiling scales linearly in the optimum.
  EXPECT_EQ(bounds::theorem1_upper(4, Rational(6)), Rational(15));
}

TEST(Bounds, Corollary1RatioExact) {
  EXPECT_EQ(bounds::corollary1_ratio(1), Rational(1));
  EXPECT_EQ(bounds::corollary1_ratio(2), Rational(2));
  EXPECT_EQ(bounds::corollary1_ratio(3), Rational(7, 3));
  EXPECT_EQ(bounds::theorem6_disjoint_upper(3, Rational(3)), Rational(7));
}

TEST(Bounds, LevelsAreIntegerExact) {
  EXPECT_EQ(bounds::theorem3_levels(2), 1);
  EXPECT_EQ(bounds::theorem3_levels(16), 4);
  EXPECT_EQ(bounds::theorem3_levels(17), 4);
  // The documented floating-log trap: floor(log(243)/log(3)) evaluates to 4
  // in double arithmetic; the true value is 5 (3^5 = 243).
  EXPECT_EQ(bounds::theorem4_levels(243, 3), 5);
  EXPECT_EQ(bounds::theorem4_levels(242, 3), 4);
  EXPECT_EQ(bounds::theorem4_levels(27, 3), 3);
}

TEST(Bounds, PredictedFmaxClosedForms) {
  const Rational p(1000);
  // (L+1)p - L with L = 4 at m = 16.
  EXPECT_EQ(bounds::theorem3_predicted_fmax(16, p), Rational(4996));
  // Lp - (L-1) with L = 3 at m = 27, k = 3.
  EXPECT_EQ(bounds::theorem4_predicted_fmax(27, 3, p), Rational(2998));
  // floor(log2 m) + 2 at m = 16.
  EXPECT_EQ(bounds::theorem5_predicted_fmax(16), Rational(6));
  EXPECT_EQ(bounds::theorem7_predicted_fmax(p), Rational(1999));
  EXPECT_EQ(bounds::theorem8_predicted_fmax(10, 3), Rational(8));
  // 1 + m(m+1)/2 * 2^-20 at m = 10: 1 + 55/2^20.
  EXPECT_EQ(bounds::theorem10_opt_upper(10),
            Rational(1) + Rational(55, std::int64_t{1} << 20));
}

// --- Cross-check: closed form == construction's report == simulation --------

TEST(Bounds, Theorem3MatchesConstructionExactly) {
  EftDispatcher eft(TieBreakKind::kMin, 0);
  const AdversaryResult r = run_th3_inclusive(eft, 16, 1000.0);
  const double predicted =
      bounds::theorem3_predicted_fmax(16, Rational(1000)).to_double();
  EXPECT_EQ(r.predicted_fmax, predicted);
  EXPECT_EQ(r.achieved_fmax, predicted);
}

TEST(Bounds, Theorem4MatchesConstructionExactly) {
  EftDispatcher eft(TieBreakKind::kMin, 0);
  const AdversaryResult r = run_th4_ksize(eft, 27, 3, 1000.0);
  const double predicted =
      bounds::theorem4_predicted_fmax(27, 3, Rational(1000)).to_double();
  EXPECT_EQ(r.predicted_fmax, predicted);
  EXPECT_EQ(r.achieved_fmax, predicted);
}

TEST(Bounds, Theorem5MatchesConstructionExactly) {
  EftDispatcher eft(TieBreakKind::kMin, 0);
  const AdversaryResult r = run_th5_nested(eft, 16);
  const double predicted = bounds::theorem5_predicted_fmax(16).to_double();
  EXPECT_EQ(r.predicted_fmax, predicted);
  EXPECT_EQ(r.achieved_fmax, predicted);
}

TEST(Bounds, Theorem7MatchesConstructionExactly) {
  EftDispatcher eft(TieBreakKind::kMin, 0);
  const AdversaryResult r = run_th7_interval(eft, 1000.0);
  const double predicted =
      bounds::theorem7_predicted_fmax(Rational(1000)).to_double();
  EXPECT_EQ(r.predicted_fmax, predicted);
  EXPECT_EQ(r.achieved_fmax, predicted);
}

TEST(Bounds, Theorem8MatchesConstructionExactly) {
  EftDispatcher eft(TieBreakKind::kMin, 0);
  const AdversaryResult r = run_th8(eft, 10, 3);
  const double predicted = bounds::theorem8_predicted_fmax(10, 3).to_double();
  EXPECT_EQ(r.predicted_fmax, predicted);
  EXPECT_EQ(r.achieved_fmax, predicted);
}

TEST(Bounds, Theorem10ReachesPredictionWithinCalibration) {
  // Th. 10's padding perturbs completions by multiples of delta = 2^-20, so
  // the realized Fmax may sit a few deltas off the clean m - k + 1 level —
  // but never below it by more than m^2 * delta, and its OPT stays under
  // the theorem10_opt_upper certificate.
  EftDispatcher eft(TieBreakKind::kMin, 0);
  const AdversaryResult r = run_th10_smalltask(eft, 10, 3);
  const double predicted = bounds::theorem8_predicted_fmax(10, 3).to_double();
  const double tol = 10.0 * 10.0 * 0x1.0p-20;
  EXPECT_EQ(r.predicted_fmax, predicted);
  EXPECT_GE(r.achieved_fmax, predicted - tol);
  EXPECT_LE(r.opt_fmax, bounds::theorem10_opt_upper(10).to_double());
}

// --- Cell evaluation: binding-theorem selection -----------------------------

TEST(BoundCellTest, UnrestrictedEftIsTheorem1) {
  const BoundCell cell = bounds::evaluate_cell(
      {.m = 16, .structure = StructureClass::kUnrestricted});
  EXPECT_TRUE(cell.upper.known);
  EXPECT_EQ(cell.upper.theorem, "Th. 1");
  EXPECT_EQ(cell.upper.ratio, Rational(23, 8));
  EXPECT_FALSE(cell.lower.known);  // no adversary fits unrestricted sets
}

TEST(BoundCellTest, DisjointEftIsCorollary1) {
  const BoundCell cell = bounds::evaluate_cell(
      {.m = 16, .k = 4, .structure = StructureClass::kDisjoint});
  EXPECT_TRUE(cell.upper.known);
  EXPECT_EQ(cell.upper.theorem, "Cor. 1");
  EXPECT_EQ(cell.upper.ratio, Rational(5, 2));
}

TEST(BoundCellTest, InclusiveLowerIsTheorem3ForImmediateDispatch) {
  const BoundCell cell = bounds::evaluate_cell(
      {.m = 16, .structure = StructureClass::kInclusive});
  EXPECT_TRUE(cell.lower.known);
  EXPECT_EQ(cell.lower.theorem, "Th. 3");
  EXPECT_FALSE(cell.upper.known);  // the paper leaves this side open
}

TEST(BoundCellTest, IntervalLowerNamesTieBreakSensitiveTheorem) {
  // EFT-Min gets the deterministic Th. 8 stream; an arbitrary-tie EFT is
  // covered by the Th. 10 variant instead.
  const BoundCell min_cell = bounds::evaluate_cell(
      {.m = 16, .k = 3, .structure = StructureClass::kInterval});
  EXPECT_EQ(min_cell.lower.theorem, "Th. 8");
  EXPECT_EQ(min_cell.lower.ratio, Rational(14));
  const BoundCell any_cell =
      bounds::evaluate_cell({.m = 16,
                             .k = 3,
                             .structure = StructureClass::kInterval,
                             .alg = AlgoClass::kEftAnyTie});
  EXPECT_EQ(any_cell.lower.theorem, "Th. 10");
  EXPECT_EQ(any_cell.lower.ratio, Rational(14));
}

TEST(BoundCellTest, NestedAnyOnlineIsTheorem5) {
  // Against ANY online algorithm the immediate-dispatch Th. 3 construction
  // no longer applies; Th. 5 does.
  const BoundCell cell = bounds::evaluate_cell({.m = 16,
                                               .structure =
                                                   StructureClass::kNested,
                                               .alg = AlgoClass::kAnyOnline});
  EXPECT_EQ(cell.lower.theorem, "Th. 5");
  EXPECT_EQ(cell.lower.ratio, Rational(2));  // (4 + 2) / 3
}

TEST(BoundCellTest, AlgoInclusionChain) {
  using bounds::algo_within;
  EXPECT_TRUE(algo_within(AlgoClass::kEftMin, AlgoClass::kAnyOnline));
  EXPECT_TRUE(algo_within(AlgoClass::kEftMin, AlgoClass::kImmediateDispatch));
  EXPECT_FALSE(algo_within(AlgoClass::kAnyOnline, AlgoClass::kEftMin));
  EXPECT_FALSE(
      algo_within(AlgoClass::kImmediateDispatch, AlgoClass::kEftAnyTie));
}

// --- Grid monotonicity ------------------------------------------------------

TEST(BoundGrid, IntervalLowerBoundNonIncreasingInK) {
  Rational prev = bounds::theorem8_ratio(32, 2);
  for (int k = 3; k < 32; ++k) {
    const Rational cur = bounds::theorem8_ratio(32, k);
    EXPECT_LE(cur, prev) << "k=" << k;
    prev = cur;
  }
}

TEST(BoundGrid, UpperCeilingsMonotoneInOpt) {
  // Both ceilings are linear in the optimum: non-decreasing in opt (load).
  EXPECT_LE(bounds::theorem1_upper(8, Rational(2)),
            bounds::theorem1_upper(8, Rational(3)));
  EXPECT_LE(bounds::theorem6_disjoint_upper(4, Rational(2)),
            bounds::theorem6_disjoint_upper(4, Rational(3)));
  // And the ratios grow with m / k toward their limits.
  EXPECT_LE(bounds::theorem1_ratio(8), bounds::theorem1_ratio(9));
  EXPECT_LE(bounds::corollary1_ratio(3), bounds::corollary1_ratio(4));
}

TEST(BoundGrid, GridSkipsKAboveM) {
  const bounds::BoundReport report = bounds::evaluate_grid(
      {4}, {2, 8}, {StructureClass::kInterval}, AlgoClass::kEftMin,
      Rational(1000));
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].query.k, 2);
}

// --- Planner ----------------------------------------------------------------

TEST(Planner, IntervalTargetForcesMMinusFPlusOneReplicas) {
  // On the ring, Th. 8/10 forces Fmax = (m - k + 1) * OPT, so F = 20 on
  // m = 256 requires k >= 237 once you insist on k >= 2.
  bounds::PlannerQuery q;
  q.m = 256;
  q.structure = StructureClass::kInterval;
  q.target_fmax = 20.0;
  const bounds::PlannerResult r = bounds::min_feasible_k(q);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.min_k, 1);  // k = 1 is per-machine FIFO: adversarially safe
  EXPECT_EQ(r.min_replicated_k, 237);
}

TEST(Planner, DisjointTargetComesWithGuarantee) {
  bounds::PlannerQuery q;
  q.m = 16;
  q.structure = StructureClass::kDisjoint;
  q.target_fmax = 4.0;
  q.opt_estimate = 2.0;
  const bounds::PlannerResult r = bounds::min_feasible_k(q);
  EXPECT_TRUE(r.feasible);
  // (3 - 2/k) * 2 <= 4 iff k <= 2: Cor. 1 guarantees the target up to k=2.
  EXPECT_EQ(r.max_guaranteed_k, 2);
}

TEST(Planner, InfeasibleWhenTargetBelowOptimum) {
  bounds::PlannerQuery q;
  q.m = 16;
  q.structure = StructureClass::kInterval;
  q.target_fmax = 1.0;
  q.opt_estimate = 2.0;  // target below the optimum itself
  EXPECT_FALSE(bounds::min_feasible_k(q).feasible);
}

TEST(Planner, SaturationScanRaisesMinK) {
  // At rho = 0.6 with worst-case Zipf(1.0) placement, k = 1 cannot sustain
  // the offered load on disjoint blocks; the LP forces a larger k than the
  // adversarial side alone would.
  bounds::PlannerQuery q;
  q.m = 16;
  q.structure = StructureClass::kDisjoint;
  q.target_fmax = 100.0;  // flow target not binding
  q.load = 0.6;
  q.zipf_s = 1.0;
  const bounds::PlannerResult r = bounds::min_feasible_k(q);
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.saturation_k, 1);
  EXPECT_EQ(r.min_k, r.saturation_k);
  EXPECT_EQ(r.binding, "LP (15) saturation");
}

// --- [diff-bounds] in the fuzzer --------------------------------------------

TEST(DiffBounds, FuzzCampaignArmsAndPassesBoundChecks) {
  FuzzConfig config;
  config.seed = 7;
  config.runs = 12;
  config.shrink = false;
  config.fault_every = 0;
  const FuzzReport report = run_fuzz(config);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.bounds_checks, 12);
}

TEST(DiffBounds, DisabledByConfig) {
  FuzzConfig config;
  config.seed = 7;
  config.runs = 4;
  config.shrink = false;
  config.fault_every = 0;
  config.bounds_diff = false;
  const FuzzReport report = run_fuzz(config);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.bounds_checks, 0);
}

}  // namespace
}  // namespace flowsched
