#include "kvstore/cluster_sim.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "kvstore/store.hpp"

namespace flowsched {
namespace {

StoreConfig small_store() {
  StoreConfig c;
  c.m = 6;
  c.keys = 60;
  c.zipf_s = 1.0;
  c.strategy = ReplicationStrategy::kOverlapping;
  c.k = 3;
  return c;
}

TEST(KeyValueStore, OwnersAreRoundRobin) {
  Rng rng(1);
  const KeyValueStore store(small_store(), rng);
  EXPECT_EQ(store.owner(0), 0);
  EXPECT_EQ(store.owner(7), 1);
  EXPECT_EQ(store.owner(59), 5);
}

TEST(KeyValueStore, ReplicasFollowStrategy) {
  Rng rng(2);
  const KeyValueStore store(small_store(), rng);
  for (int key = 0; key < 60; ++key) {
    const auto expected =
        replica_set(ReplicationStrategy::kOverlapping, store.owner(key), 3, 6);
    EXPECT_EQ(store.replicas_of_key(key), expected);
  }
}

TEST(KeyValueStore, MachinePopularitySumsToOne) {
  Rng rng(3);
  const KeyValueStore store(small_store(), rng);
  const auto& pop = store.machine_popularity();
  EXPECT_EQ(pop.size(), 6u);
  EXPECT_NEAR(std::accumulate(pop.begin(), pop.end(), 0.0), 1.0, 1e-12);
}

TEST(KeyValueStore, ShuffleChangesPlacementNotMass) {
  auto config = small_store();
  config.shuffle_key_ranks = false;
  Rng rng(4);
  const KeyValueStore fixed(config, rng);
  // Without shuffling, key 0 is the most popular and lives on machine 0.
  const auto& pop = fixed.machine_popularity();
  EXPECT_GT(pop[0], pop[5]);
}

TEST(KeyValueStore, SampleKeyInRange) {
  Rng rng(5);
  const KeyValueStore store(small_store(), rng);
  for (int i = 0; i < 1000; ++i) {
    const int key = store.sample_key(rng);
    EXPECT_GE(key, 0);
    EXPECT_LT(key, 60);
  }
}

TEST(KeyValueStore, RejectsBadConfig) {
  Rng rng(6);
  StoreConfig bad = small_store();
  bad.m = 0;
  EXPECT_THROW(KeyValueStore(bad, rng), std::invalid_argument);
  bad = small_store();
  bad.keys = 0;
  EXPECT_THROW(KeyValueStore(bad, rng), std::invalid_argument);
}

TEST(ClusterSim, LowLoadHasUnitLatency) {
  Rng rng(7);
  const KeyValueStore store(small_store(), rng);
  SimConfig sim;
  sim.lambda = 0.5;  // ~8% load: queues essentially empty
  sim.requests = 2000;
  EftDispatcher eft(TieBreakKind::kMin);
  const auto report = simulate_cluster(store, sim, eft, rng);
  EXPECT_EQ(report.requests, 2000);
  EXPECT_NEAR(report.p50, 1.0, 0.1);
  EXPECT_GE(report.max_latency, 1.0);
}

TEST(ClusterSim, LatencyGrowsWithLoad) {
  Rng rng(8);
  const KeyValueStore store(small_store(), rng);
  EftDispatcher eft(TieBreakKind::kMin);
  SimConfig low;
  low.lambda = 1.0;
  low.requests = 4000;
  SimConfig high;
  high.lambda = 5.4;  // 90% of m = 6
  high.requests = 4000;
  Rng rng_low(9);
  Rng rng_high(9);
  const auto r_low = simulate_cluster(store, low, eft, rng_low);
  const auto r_high = simulate_cluster(store, high, eft, rng_high);
  EXPECT_GT(r_high.mean_latency, r_low.mean_latency);
  EXPECT_GT(r_high.p99, r_low.p99);
}

TEST(ClusterSim, PercentilesAreOrdered) {
  Rng rng(10);
  const KeyValueStore store(small_store(), rng);
  SimConfig sim;
  sim.lambda = 4.0;
  sim.requests = 3000;
  EftDispatcher eft(TieBreakKind::kMin);
  const auto report = simulate_cluster(store, sim, eft, rng);
  EXPECT_LE(report.p50, report.p90);
  EXPECT_LE(report.p90, report.p99);
  EXPECT_LE(report.p99, report.max_latency);
  EXPECT_GE(report.mean_latency, 1.0);  // service time alone is 1
}

TEST(ClusterSim, UtilizationBoundedByOne) {
  Rng rng(11);
  const KeyValueStore store(small_store(), rng);
  SimConfig sim;
  sim.lambda = 5.0;
  sim.requests = 3000;
  EftDispatcher eft(TieBreakKind::kMin);
  const auto report = simulate_cluster(store, sim, eft, rng);
  ASSERT_EQ(report.utilization.size(), 6u);
  for (double u : report.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
}

TEST(ClusterSim, ServiceDistributionsProduceValidRuns) {
  Rng rng(12);
  const KeyValueStore store(small_store(), rng);
  EftDispatcher eft(TieBreakKind::kMin);
  for (auto dist : {ServiceDist::kConstant, ServiceDist::kExponential,
                    ServiceDist::kUniform}) {
    SimConfig sim;
    sim.lambda = 2.0;
    sim.requests = 1000;
    sim.dist = dist;
    Rng run_rng(13);
    const auto report = simulate_cluster(store, sim, eft, run_rng);
    EXPECT_EQ(report.requests, 1000);
    EXPECT_GT(report.mean_latency, 0.0);
  }
}

TEST(ClusterSim, ReportStringMentionsKeyFigures) {
  Rng rng(14);
  const KeyValueStore store(small_store(), rng);
  SimConfig sim;
  sim.lambda = 2.0;
  sim.requests = 500;
  EftDispatcher eft(TieBreakKind::kMin);
  const auto report = simulate_cluster(store, sim, eft, rng);
  const auto text = report.str();
  EXPECT_NE(text.find("p99"), std::string::npos);
  EXPECT_NE(text.find("requests=500"), std::string::npos);
}

TEST(ClusterSim, RejectsNonPositiveLambda) {
  Rng rng(15);
  const KeyValueStore store(small_store(), rng);
  SimConfig sim;
  sim.lambda = 0.0;
  EftDispatcher eft(TieBreakKind::kMin);
  EXPECT_THROW(simulate_cluster(store, sim, eft, rng), std::invalid_argument);
}

}  // namespace
}  // namespace flowsched
