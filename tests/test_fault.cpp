// Fault-injection subsystem: FaultPlan timelines, engine kill/requeue/park
// semantics per recovery policy, the fault-mode auditor, the hardened
// runner (error context, watchdog), and sweep checkpointing (docs/faults.md).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "check/audit.hpp"
#include "fault/plan.hpp"
#include "fault/plan_io.hpp"
#include "fault/recovery.hpp"
#include "io/instance_io.hpp"
#include "model/instance.hpp"
#include "runner/checkpoint.hpp"
#include "runner/experiment.hpp"
#include "sched/dispatchers.hpp"
#include "sched/engine.hpp"
#include "util/rng.hpp"

namespace flowsched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- FaultPlan timelines ----------------------------------------------------

TEST(FaultPlan, QueriesFollowTheTimeline) {
  FaultPlan plan(2);
  plan.add_down(0, 1.0, 2.5);
  plan.add_down(0, 4.0, kInf);
  EXPECT_FALSE(plan.fault_free());
  EXPECT_EQ(plan.crash_count(), 2);

  EXPECT_TRUE(plan.is_up(0, 0.0));
  EXPECT_FALSE(plan.is_up(0, 1.0));   // [from, to) is closed at from
  EXPECT_FALSE(plan.is_up(0, 2.0));
  EXPECT_TRUE(plan.is_up(0, 2.5));    // ... and open at to
  EXPECT_FALSE(plan.is_up(0, 1e9));   // never recovers after 4
  EXPECT_TRUE(plan.is_up(1, 1.5));    // other machine untouched

  EXPECT_DOUBLE_EQ(plan.next_up(0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(plan.next_up(0, 1.0), 2.5);
  EXPECT_EQ(plan.next_up(0, 5.0), kInf);
  EXPECT_DOUBLE_EQ(plan.next_down(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.next_down(0, 3.0), 4.0);
  EXPECT_EQ(plan.next_down(1, 0.0), kInf);

  EXPECT_DOUBLE_EQ(plan.downtime(0, 0.0, 3.0), 1.5);
  EXPECT_DOUBLE_EQ(plan.downtime(0, 2.0, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(plan.downtime(1, 0.0, 3.0), 0.0);
}

TEST(FaultPlan, RejectsUnorderedOrTouchingIntervals) {
  FaultPlan plan(1);
  plan.add_down(0, 1.0, 2.0);
  EXPECT_THROW(plan.add_down(0, 0.5, 0.75), std::invalid_argument);
  EXPECT_THROW(plan.add_down(0, 1.5, 3.0), std::invalid_argument);
  EXPECT_THROW(plan.add_down(0, 2.0, 3.0), std::invalid_argument);  // touches
  plan.add_down(0, 2.5, 3.0);  // a gap is fine
}

TEST(FaultPlan, RandomIsAPureFunctionOfSeedAndGridAligned) {
  FaultModelConfig model;
  model.mean_up = 4.0;
  model.mean_down = 1.0;
  model.horizon = 64.0;
  Rng a(99), b(99);
  const FaultPlan pa = FaultPlan::random(6, model, a);
  const FaultPlan pb = FaultPlan::random(6, model, b);
  EXPECT_EQ(pa.str(), pb.str());
  EXPECT_GT(pa.crash_count(), 0);
  for (int j = 0; j < pa.m(); ++j) {
    for (const DownInterval& d : pa.downs(j)) {
      EXPECT_LT(d.from, model.horizon);
      // Every boundary is a multiple of the dyadic grid — exact doubles.
      EXPECT_DOUBLE_EQ(d.from / model.grid,
                       std::floor(d.from / model.grid + 0.5));
      EXPECT_DOUBLE_EQ(d.to / model.grid, std::floor(d.to / model.grid + 0.5));
    }
  }
}

TEST(FaultPlan, NonPositiveMeanUpMeansFaultFree) {
  FaultModelConfig model;
  model.mean_up = 0.0;
  Rng rng(1);
  EXPECT_TRUE(FaultPlan::random(4, model, rng).fault_free());
  model.mean_up = 16.0;
  model.horizon = 0.0;
  EXPECT_TRUE(FaultPlan::random(4, model, rng).fault_free());
}

TEST(FaultCase, SerializationRoundTrips) {
  Instance inst(3, {{0.0, 2.0, ProcSet({0, 1})}, {0.5, 1.0, ProcSet({2})}});
  FaultPlan plan(3);
  plan.add_down(0, 1.0, 2.5);
  plan.add_down(2, 0.25, kInf);
  RecoveryPolicy recovery;
  recovery.kind = RecoveryKind::kBackoff;
  recovery.max_retries = 3;
  recovery.jitter_seed = 77;

  const std::string text = fault_case_to_string(inst, plan, recovery);
  EXPECT_TRUE(has_fault_directives(text));
  const FaultCase fc = parse_fault_case(text);
  EXPECT_EQ(fc.instance.n(), 2);
  EXPECT_EQ(fc.plan.str(), plan.str());
  EXPECT_EQ(fc.recovery.kind, RecoveryKind::kBackoff);
  EXPECT_EQ(fc.recovery.max_retries, 3);
  EXPECT_EQ(fc.recovery.jitter_seed, 77u);
  EXPECT_EQ(fc.recovery.str(), recovery.str());

  EXPECT_FALSE(has_fault_directives(instance_to_string(inst)));
}

// --- Engine semantics under faults ------------------------------------------

Instance one_machine(double proc) { return Instance(1, {{0.0, proc, {}}}); }

TEST(FaultEngine, FaultFreePlanMatchesTheNormalPath) {
  std::vector<Task> tasks;
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    const int a = static_cast<int>(rng() % 4);
    const int b = static_cast<int>(rng() % 4);
    tasks.push_back({0.25 * i, 0.5 + 0.125 * static_cast<double>(rng() % 8),
                     a == b ? ProcSet({a}) : ProcSet({a, b})});
  }
  const Instance inst(4, tasks);
  EftDispatcher eft_a(TieBreakKind::kMin);
  const Schedule reference = run_dispatcher(inst, eft_a);

  EftDispatcher eft_b(TieBreakKind::kMin);
  const FaultPlan plan(4);  // no faults scripted
  const OnlineEngine engine =
      run_dispatcher_faulty(inst, eft_b, plan, RecoveryPolicy{});
  const FaultStats& stats = engine.fault_log().stats();
  EXPECT_EQ(stats.completed, inst.n());
  EXPECT_EQ(stats.kills, 0);
  EXPECT_EQ(stats.parked, 0);
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(engine.fate_of(i), TaskFate::kCompleted);
    EXPECT_DOUBLE_EQ(engine.completion_of(i), reference.completion(i)) << i;
    EXPECT_EQ(engine.machine_of(i), reference.machine(i)) << i;
  }
}

TEST(FaultEngine, ImmediateRecoveryRedoesKilledWork) {
  FaultPlan plan(1);
  plan.add_down(0, 1.0, 1.5);
  EftDispatcher eft(TieBreakKind::kMin);
  const OnlineEngine engine =
      run_dispatcher_faulty(one_machine(2.0), eft, plan, RecoveryPolicy{});
  const FaultLog& log = engine.fault_log();

  // Attempt 0 runs [0, 1) and is killed; the immediate retry at t=1 finds
  // the machine still down and parks until 1.5; the rerun owes the full
  // p=2 again, so C = 3.5.
  EXPECT_EQ(engine.fate_of(0), TaskFate::kCompleted);
  EXPECT_DOUBLE_EQ(log.completion(0), 3.5);
  const auto attempts = log.attempts_of(0);
  ASSERT_EQ(attempts.size(), 3u);
  EXPECT_TRUE(attempts[0].killed);
  EXPECT_DOUBLE_EQ(attempts[0].end, 1.0);
  EXPECT_EQ(attempts[1].machine, -1);  // parked
  EXPECT_DOUBLE_EQ(attempts[1].end, 1.5);
  EXPECT_DOUBLE_EQ(attempts[2].start, 1.5);
  EXPECT_EQ(log.stats().kills, 1);
  EXPECT_EQ(log.stats().parked, 1);
  EXPECT_DOUBLE_EQ(log.stats().wasted_work, 1.0);
}

TEST(FaultEngine, CheckpointRecoveryRetainsCompletedWork) {
  FaultPlan plan(1);
  plan.add_down(0, 1.0, 1.5);
  RecoveryPolicy recovery;
  recovery.kind = RecoveryKind::kCheckpoint;
  EftDispatcher eft(TieBreakKind::kMin);
  const OnlineEngine engine =
      run_dispatcher_faulty(one_machine(2.0), eft, plan, recovery);
  const FaultLog& log = engine.fault_log();

  // The killed segment's one unit of work is retained: only the remaining
  // unit reruns after the repair, so C = 2.5 and nothing is wasted.
  EXPECT_DOUBLE_EQ(log.completion(0), 2.5);
  EXPECT_DOUBLE_EQ(log.stats().wasted_work, 0.0);
  double executed = 0;
  for (const FaultAttempt& a : log.attempts_of(0)) executed += a.work();
  EXPECT_DOUBLE_EQ(executed, 2.0);  // total machine time equals p exactly
}

TEST(FaultEngine, BackoffRetriesAtThePolicyInstant) {
  FaultPlan plan(1);
  plan.add_down(0, 1.0, 1.125);
  RecoveryPolicy recovery;
  recovery.kind = RecoveryKind::kBackoff;
  EftDispatcher eft(TieBreakKind::kMin);
  const OnlineEngine engine =
      run_dispatcher_faulty(one_machine(2.0), eft, plan, recovery);
  const auto attempts = engine.fault_log().attempts_of(0);
  ASSERT_GE(attempts.size(), 2u);
  // The retry is scheduled exactly where the pure policy function says —
  // this is the contract the [fault-backoff] audit recomputes.
  EXPECT_DOUBLE_EQ(attempts[1].scheduled, recovery.retry_time(0, 0, 1.0));
  EXPECT_GE(attempts[1].scheduled, 1.0 + recovery.backoff_base);
}

TEST(FaultEngine, WholeSetOutageParksInsteadOfDropping) {
  FaultPlan plan(2);
  plan.add_down(0, 0.0, 4.0);
  plan.add_down(1, 0.0, 4.0);
  EftDispatcher eft(TieBreakKind::kMin);
  const Instance inst(2, {{0.0, 1.0, {}}});
  const OnlineEngine engine =
      run_dispatcher_faulty(inst, eft, plan, RecoveryPolicy{});
  const FaultLog& log = engine.fault_log();
  EXPECT_EQ(engine.fate_of(0), TaskFate::kCompleted);
  EXPECT_DOUBLE_EQ(log.completion(0), 5.0);  // parked [0,4), then p=1
  ASSERT_EQ(log.attempts_of(0).size(), 2u);
  EXPECT_EQ(log.attempts_of(0)[0].machine, -1);
  EXPECT_EQ(log.stats().parked, 1);
  EXPECT_EQ(log.stats().dropped, 0);
}

TEST(FaultEngine, StrandedTaskIsDroppedNotLost) {
  FaultPlan plan(1);
  plan.add_down(0, 0.5, kInf);
  EftDispatcher eft(TieBreakKind::kMin);
  const OnlineEngine engine =
      run_dispatcher_faulty(one_machine(2.0), eft, plan, RecoveryPolicy{});
  // Killed at 0.5, and the only machine never recovers: explicit drop.
  EXPECT_EQ(engine.fate_of(0), TaskFate::kDropped);
  EXPECT_EQ(engine.fault_log().stats().dropped, 1);
  EXPECT_THROW(engine.fault_log().completion(0), std::logic_error);
}

TEST(FaultEngine, RetryBudgetExhaustionDrops) {
  FaultPlan plan(1);
  plan.add_down(0, 0.5, 1.0);
  plan.add_down(0, 1.5, 2.0);
  RecoveryPolicy recovery;
  recovery.max_retries = 1;
  EftDispatcher eft(TieBreakKind::kMin);
  const OnlineEngine engine =
      run_dispatcher_faulty(one_machine(1.0), eft, plan, recovery);
  // Kill at 0.5 (attempt 0), retry killed again at 1.5 (attempt 1 ==
  // max_retries): dropped with both kills on the books.
  EXPECT_EQ(engine.fate_of(0), TaskFate::kDropped);
  EXPECT_EQ(engine.fault_log().stats().kills, 2);
  EXPECT_EQ(engine.fault_log().stats().dropped, 1);
}

TEST(FaultEngine, AuditorAcceptsCleanRunsAndFlagsDowntimeViolations) {
  Instance inst(3, {{0.0, 2.0, ProcSet({0, 1})},
                    {0.25, 1.0, ProcSet({1, 2})},
                    {0.5, 1.5, ProcSet({0, 2})},
                    {1.0, 1.0, {}}});
  FaultPlan plan(3);
  plan.add_down(0, 0.5, 2.0);
  plan.add_down(1, 1.0, 3.0);
  RecoveryPolicy recovery;
  recovery.kind = RecoveryKind::kBackoff;

  for (bool buggy : {false, true}) {
    AuditConfig acfg;
    acfg.fault_mode = true;
    InvariantAuditor auditor(acfg);
    EftDispatcher eft(TieBreakKind::kMin);
    const OnlineEngine engine = run_dispatcher_faulty(
        inst, eft, plan, recovery, &auditor, RunTag{}, buggy);
    auditor.check_fault_run(plan, recovery, engine.fault_log());
    if (buggy) {
      // set_unsafe_ignore_downtime executes through down windows; the
      // auditor must catch it as a [fault-*] violation.
      ASSERT_FALSE(auditor.ok());
      EXPECT_NE(auditor.report().find("[fault-"), std::string::npos);
    } else {
      EXPECT_TRUE(auditor.ok()) << auditor.report();
    }
  }
}

// --- Hardened runner ---------------------------------------------------------

TEST(RunnerHardening, ThrowingReplicateSurfacesTaggedAndIndexStable) {
  const std::uint64_t exp = experiment_id("fault_test");
  const std::uint64_t cell = cell_id({3, 1});
  for (int threads : {1, 8}) {
    ExperimentRunner runner(threads);
    std::atomic<int> ran{0};
    bool caught = false;
    try {
      runner.replicates(exp, cell, 8, [&](std::uint64_t, int rep) -> double {
        ++ran;
        if (rep == 2 || rep == 5) {
          throw std::runtime_error("synthetic replicate failure");
        }
        return 1.0;
      });
    } catch (const ReplicateError& e) {
      caught = true;
      // The smallest failing index wins at any thread count — the same
      // error a serial run hits first.
      EXPECT_EQ(e.rep(), 2u) << "threads=" << threads;
      EXPECT_EQ(e.experiment(), exp);
      EXPECT_EQ(e.cell(), cell);
      EXPECT_NE(std::string(e.what()).find("synthetic replicate failure"),
                std::string::npos);
    }
    EXPECT_TRUE(caught) << "threads=" << threads;
    if (threads > 1) {
      // Pool path: every job still ran to completion (no detached work).
      EXPECT_EQ(ran.load(), 8) << "threads=" << threads;
    }
  }
}

TEST(RunnerHardening, WatchdogReportsSlowReplicatesWithoutKillingThem) {
  for (int threads : {1, 2}) {
    ExperimentRunner runner(threads);
    runner.set_watchdog(0.01);
    runner.set_watch_label("unit-test");
    const auto out = runner.map<int>(2, [](int i) {
      if (i == 1) std::this_thread::sleep_for(std::chrono::milliseconds(60));
      return i;
    });
    ASSERT_EQ(out.size(), 2u);  // the slow job completed, not killed
    EXPECT_EQ(out[1], 1);
    const auto hung = runner.hung_replicates();
    ASSERT_FALSE(hung.empty()) << "threads=" << threads;
    EXPECT_NE(hung.front().find("unit-test"), std::string::npos);
  }
}

// --- Sweep checkpointing -----------------------------------------------------

std::string temp_ckpt(const char* name) {
  return testing::TempDir() + "/flowsched_" + name + ".ckpt";
}

TEST(SweepCheckpoint, RoundTripsHexfloatsExactly) {
  const std::string path = temp_ckpt("roundtrip");
  std::remove(path.c_str());
  const std::vector<double> values{1.0 / 3.0, 1e-301, 0.0, -2.5,
                                   0.1 + 0.2};  // not representable exactly
  {
    SweepCheckpoint ckpt(path, "unit", 42);
    EXPECT_EQ(ckpt.resumed(), 0);
    ckpt.put(7, values);
    ckpt.put(9, {1.0});
  }
  SweepCheckpoint resumed(path, "unit", 42);
  EXPECT_EQ(resumed.resumed(), 2);
  ASSERT_TRUE(resumed.has(7));
  const std::vector<double>& back = resumed.get(7);
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(back[i], values[i]) << i;  // bit-exact, not approximately
  }
  EXPECT_FALSE(resumed.has(8));
  EXPECT_THROW(resumed.get(8), std::out_of_range);
}

TEST(SweepCheckpoint, RejectsForeignFingerprint) {
  const std::string path = temp_ckpt("fingerprint");
  std::remove(path.c_str());
  { SweepCheckpoint ckpt(path, "unit", 42); }
  EXPECT_THROW(SweepCheckpoint(path, "unit", 43), std::runtime_error);
  EXPECT_THROW(SweepCheckpoint(path, "other", 42), std::runtime_error);
  SweepCheckpoint same(path, "unit", 42);  // same config reopens fine
}

TEST(SweepCheckpoint, IgnoresTornTrailingLine) {
  const std::string path = temp_ckpt("torn");
  std::remove(path.c_str());
  {
    SweepCheckpoint ckpt(path, "unit", 42);
    ckpt.put(1, {1.5, 2.5});
  }
  {
    // Simulate a run killed mid-append: a truncated cell line.
    std::ofstream out(path, std::ios::app);
    out << "cell 0x0000000000000002 3 0x1p+0";
  }
  SweepCheckpoint resumed(path, "unit", 42);
  EXPECT_EQ(resumed.resumed(), 1);  // intact cell recovered
  EXPECT_TRUE(resumed.has(1));
  EXPECT_FALSE(resumed.has(2));  // torn line dropped, not half-read
}

TEST(SweepCheckpoint, RePutMustBeBitIdentical) {
  const std::string path = temp_ckpt("reput");
  std::remove(path.c_str());
  SweepCheckpoint ckpt(path, "unit", 42);
  ckpt.put(1, {1.0, 2.0});
  ckpt.put(1, {1.0, 2.0});  // identical re-put is a no-op
  EXPECT_THROW(ckpt.put(1, {1.0, 2.000000001}), std::runtime_error);
}

}  // namespace
}  // namespace flowsched
