// Non-clairvoyant mode (docs/scenarios.md): the engines' Clairvoyance
// switch, the per-machine setup charge on processing-set switches, the
// NcDispatcher adapter, the setup-aware auditor contract, and the
// batch/streaming nc mirror. The counterfactual no-peek replay and the nc
// bound oracles themselves live in the fuzz battery (check/fuzz.hpp); here
// we pin the engine semantics they rely on.
#include "sched/nonclairvoyant.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/audit.hpp"
#include "model/instance.hpp"
#include "obs/metrics.hpp"
#include "sched/dispatchers.hpp"
#include "sched/engine.hpp"
#include "sched/streaming.hpp"

namespace flowsched {
namespace {

// One machine, three tasks, alternating processing sets: the machine pays
// the setup exactly when the set switches (first task free), and
// C_i = S_i + setup_i + p_i holds bitwise on the dyadic grid.
TEST(NonClairvoyant, SetupChargedOnProcSetSwitch) {
  const double setup = 0.25;
  std::vector<Task> tasks = {
      {.release = 0.0, .proc = 1.0, .eligible = ProcSet({0})},
      {.release = 0.0, .proc = 0.5, .eligible = ProcSet({0})},   // same set
      {.release = 0.0, .proc = 0.5, .eligible = ProcSet({0, 1})}  // switch
  };
  const Instance inst(2, std::move(tasks));
  auto policy = make_eft_min();
  NcDispatcher ncd(*policy);
  const OnlineEngine engine = run_dispatcher_nc(inst, ncd, setup);

  EXPECT_EQ(engine.setup_of(0), 0.0);  // first task on its machine is free
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(engine.completion_of(i),
              (engine.start_of(i) + engine.setup_of(i)) + inst.task(i).proc)
        << "task " << i;
    EXPECT_TRUE(engine.setup_of(i) == 0.0 || engine.setup_of(i) == setup)
        << "task " << i;
  }
  // At least one set switch happened somewhere (tasks 1 and 2 cannot both
  // avoid it on a 2-machine EFT run where task 2's set differs).
  double charged = 0;
  for (int i = 0; i < inst.n(); ++i) charged += engine.setup_of(i);
  EXPECT_GT(charged, 0.0);
  EXPECT_GE(nc_max_flow(engine), 1.0);  // task 0 alone flows p = 1
}

// The adapter: renames the run so the auditor's clairvoyant behavioural
// inference never fires on censored runs, and forces queue-depth tracking
// on (the censored frontier is derived from "observably busy").
TEST(NonClairvoyant, AdapterNameAndQueueDepths) {
  auto policy = make_eft_min();
  NcDispatcher ncd(*policy);
  EXPECT_EQ(ncd.name(), "NC(EFT-Min)");
  EXPECT_TRUE(ncd.needs_queue_depths());
}

// The setup-aware auditor: clean on an honest nc run, and [setup-accounting]
// fires when the auditor is armed with the wrong setup value.
TEST(NonClairvoyant, AuditorSetupAccounting) {
  const double setup = 0.375;
  std::vector<Task> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back({.release = 0.25 * i,
                     .proc = 0.5 + 0.125 * (i % 4),
                     .eligible = (i % 3 == 0) ? ProcSet({0, 1})
                                              : ProcSet({i % 2, 2})});
  }
  const Instance inst(3, std::move(tasks));
  auto policy = make_eft_min();
  NcDispatcher ncd(*policy);

  AuditConfig config;
  config.nc_mode = true;
  config.nc_setup = setup;
  InvariantAuditor auditor(config);
  run_dispatcher_nc(inst, ncd, setup, &auditor);
  EXPECT_TRUE(auditor.ok()) << auditor.report();

  AuditConfig wrong = config;
  wrong.nc_setup = setup + 0.125;
  InvariantAuditor wrong_auditor(wrong);
  auto policy2 = make_eft_min();
  NcDispatcher ncd2(*policy2);
  run_dispatcher_nc(inst, ncd2, setup, &wrong_auditor);
  ASSERT_FALSE(wrong_auditor.ok());
  EXPECT_NE(wrong_auditor.report().find("[setup-accounting]"), std::string::npos)
      << wrong_auditor.report();
}

// A clairvoyance-oblivious policy (RoundRobin never reads frontiers, loads
// or processing times) commits the bit-identical schedule in nc mode at
// setup 0 — censoring changed nothing it looks at.
TEST(NonClairvoyant, ObliviousPolicyMatchesClairvoyantAtZeroSetup) {
  std::vector<Task> tasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back({.release = 0.125 * i,
                     .proc = 0.25 + 0.125 * (i % 5),
                     .eligible = (i % 4 == 0) ? ProcSet()
                                              : ProcSet({i % 3, 3})});
  }
  const Instance inst(4, std::move(tasks));

  RoundRobinDispatcher clair;
  const Schedule ref = run_dispatcher(inst, clair);

  RoundRobinDispatcher inner;
  NcDispatcher ncd(inner);
  const OnlineEngine nc = run_dispatcher_nc(inst, ncd, /*setup=*/0.0);
  for (int i = 0; i < inst.n(); ++i) {
    ASSERT_EQ(nc.machine_of(i), ref.machine(i)) << "task " << i;
    ASSERT_EQ(nc.start_of(i), ref.start(i)) << "task " << i;
    ASSERT_EQ(nc.setup_of(i), 0.0) << "task " << i;
  }
}

// The streaming engine's nc mirror: identical censored observables at every
// dispatch instant, so per-task (machine, start) matches the batch engine
// bitwise — the property the fuzzer's [diff-nc-stream] differential runs on
// random instances.
TEST(NonClairvoyant, StreamingMirrorsBatchEngine) {
  const double setup = 0.5;
  std::vector<Task> tasks;
  for (int i = 0; i < 60; ++i) {
    tasks.push_back({.release = 0.125 * (i / 2),  // frequent release ties
                     .proc = 0.25 + 0.125 * (i % 6),
                     .eligible = (i % 5 == 0) ? ProcSet()
                                              : ProcSet({i % 4, (i + 1) % 4})});
  }
  const Instance inst(4, std::move(tasks));

  auto batch_policy = make_eft_min();
  NcDispatcher batch_ncd(*batch_policy);
  const OnlineEngine batch = run_dispatcher_nc(inst, batch_ncd, setup);

  auto stream_policy = make_eft_min();
  NcDispatcher stream_ncd(*stream_policy);
  StreamingEngine stream(inst.m(), stream_ncd);
  stream.set_clairvoyance(Clairvoyance::kNonClairvoyant, setup);
  std::vector<Assignment> got;
  got.reserve(static_cast<std::size_t>(inst.n()));
  for (const Task& t : inst.tasks()) got.push_back(stream.release(t));
  stream.drain();

  for (int i = 0; i < inst.n(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    ASSERT_EQ(got[idx].machine, batch.machine_of(i)) << "task " << i;
    ASSERT_EQ(got[idx].start, batch.start_of(i)) << "task " << i;
  }
}

// The planted clairvoyance leak is live: on an instance engineered so the
// censored load ranking disagrees with the true one, the leaking engine
// commits a different schedule than the honest nc run. (That the fuzzer's
// [nc-no-peek] replay catches and shrinks it is asserted end to end by
// fuzz_smoke's --inject-nc-bug campaign.)
TEST(NonClairvoyant, PlantedLeakChangesDispatch) {
  // Two machines, both observably busy at t = 1 with equal censored
  // frontiers, but machine 0 holds the long job: only a peeking policy can
  // tell them apart.
  std::vector<Task> tasks = {
      {.release = 0.0, .proc = 8.0, .eligible = ProcSet({0})},
      {.release = 0.0, .proc = 1.0, .eligible = ProcSet({1})},
      {.release = 1.0, .proc = 1.0, .eligible = ProcSet({0, 1})},
  };
  const Instance inst(2, std::move(tasks));

  auto honest_policy = make_eft_min();
  NcDispatcher honest_ncd(*honest_policy);
  const OnlineEngine honest =
      run_dispatcher_nc(inst, honest_ncd, /*setup=*/0.0);

  auto leak_policy = make_eft_min();
  NcDispatcher leak_ncd(*leak_policy);
  const OnlineEngine leaky = run_dispatcher_nc(
      inst, leak_ncd, /*setup=*/0.0, nullptr, {}, /*unsafe_nc_leak=*/true);

  EXPECT_EQ(leaky.machine_of(2), 1);  // true frontiers: machine 1 wins
  EXPECT_NE(honest.machine_of(2), leaky.machine_of(2));
}

}  // namespace
}  // namespace flowsched
