#include "sched/dispatchers.hpp"

#include <gtest/gtest.h>

#include "sched/engine.hpp"
#include "workload/generator.hpp"

namespace flowsched {
namespace {

// Small fixed instance: m=3, tasks arriving with restrictions.
Instance restricted_instance() {
  std::vector<Task> tasks{
      {.release = 0, .proc = 2, .eligible = ProcSet({0, 1})},
      {.release = 0, .proc = 1, .eligible = ProcSet({0, 1})},
      {.release = 0, .proc = 1, .eligible = ProcSet({1, 2})},
      {.release = 1, .proc = 1, .eligible = ProcSet({0, 1})},
  };
  return Instance(3, std::move(tasks));
}

TEST(EftDispatcher, SchedulesEarliestFinishMachine) {
  const auto inst = restricted_instance();
  EftDispatcher eft(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, eft);
  EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
  // T0 -> M0 (tie, Min). T1 -> M1 (earliest finish 0). T2 -> M2 (M1 busy
  // until 1, M2 free). T3 at r=1: M0 busy until 2, M1 free at 1 -> M1.
  EXPECT_EQ(sched.machine(0), 0);
  EXPECT_EQ(sched.machine(1), 1);
  EXPECT_EQ(sched.machine(2), 2);
  EXPECT_EQ(sched.machine(3), 1);
  EXPECT_DOUBLE_EQ(sched.start(3), 1.0);
}

TEST(EftDispatcher, MaxTieBreakPrefersHighIndex) {
  const auto inst = restricted_instance();
  EftDispatcher eft(TieBreakKind::kMax);
  const auto sched = run_dispatcher(inst, eft);
  EXPECT_EQ(sched.machine(0), 1);  // tie between M0, M1 broken upward
  EXPECT_TRUE(sched.validate().ok());
}

TEST(EftDispatcher, StartsAtReleaseWhenMachinesIdle) {
  const auto inst = Instance::unrestricted(2, {{5.0, 1.0}});
  EftDispatcher eft(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, eft);
  EXPECT_DOUBLE_EQ(sched.start(0), 5.0);
  EXPECT_DOUBLE_EQ(sched.flow(0), 1.0);
}

TEST(EftDispatcher, RespectsProcessingSets) {
  Rng rng(5);
  RandomInstanceOptions opts;
  opts.m = 5;
  opts.n = 200;
  opts.sets = RandomSets::kArbitrary;
  const auto inst = random_instance(opts, rng);
  EftDispatcher eft(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, eft);
  EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
}

TEST(EftDispatcher, NameIncludesTieBreak) {
  EXPECT_EQ(EftDispatcher(TieBreakKind::kMin).name(), "EFT-Min");
  EXPECT_EQ(EftDispatcher(TieBreakKind::kMax).name(), "EFT-Max");
  EXPECT_EQ(make_eft_rand(1)->name(), "EFT-Rand");
}

TEST(RandomEligibleDispatcher, ProducesValidSchedules) {
  Rng rng(9);
  RandomInstanceOptions opts;
  opts.m = 4;
  opts.n = 150;
  opts.sets = RandomSets::kIntervals;
  const auto inst = random_instance(opts, rng);
  RandomEligibleDispatcher d(77);
  const auto sched = run_dispatcher(inst, d);
  EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
}

TEST(RandomEligibleDispatcher, ResetReproducesRun) {
  const auto inst = restricted_instance();
  RandomEligibleDispatcher d(42);
  const auto s1 = run_dispatcher(inst, d);
  const auto s2 = run_dispatcher(inst, d);  // run_dispatcher resets
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(s1.machine(i), s2.machine(i));
    EXPECT_DOUBLE_EQ(s1.start(i), s2.start(i));
  }
}

TEST(LeastLoadedDispatcher, BalancesTotalWork) {
  // 4 equal tasks, 2 machines, all released at 0: loads must split 2/2.
  const auto inst = Instance::unrestricted(2, {{0, 1}, {0, 1}, {0, 1}, {0, 1}});
  LeastLoadedDispatcher d(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, d);
  const auto loads = sched.machine_loads();
  EXPECT_DOUBLE_EQ(loads[0], 2.0);
  EXPECT_DOUBLE_EQ(loads[1], 2.0);
}

TEST(JsqDispatcher, PrefersShortQueues) {
  // Three tasks at time 0 on 2 machines: queue counts 1/1 after two tasks,
  // third goes to the Min machine again; all must be valid.
  const auto inst = Instance::unrestricted(2, {{0, 5}, {0, 5}, {0, 5}});
  JsqDispatcher d(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, d);
  EXPECT_TRUE(sched.validate().ok());
  EXPECT_EQ(sched.machine(0), 0);
  EXPECT_EQ(sched.machine(1), 1);  // queue on M0 is longer now
}

TEST(JsqDispatcher, QueueDrainsOverTime) {
  // Second task released after the first completes: both see empty queues.
  const auto inst = Instance::unrestricted(2, {{0, 1}, {5, 1}});
  JsqDispatcher d(TieBreakKind::kMin);
  const auto sched = run_dispatcher(inst, d);
  EXPECT_EQ(sched.machine(0), 0);
  EXPECT_EQ(sched.machine(1), 0);  // ties on empty queues, Min
}

TEST(RoundRobinDispatcher, CyclesThroughEachSet) {
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({.release = static_cast<double>(i),
                     .proc = 0.5,
                     .eligible = ProcSet({0, 1})});
  }
  const Instance inst(3, std::move(tasks));
  RoundRobinDispatcher d;
  const auto sched = run_dispatcher(inst, d);
  EXPECT_EQ(sched.machine(0), 0);
  EXPECT_EQ(sched.machine(1), 1);
  EXPECT_EQ(sched.machine(2), 0);
  EXPECT_EQ(sched.machine(3), 1);
}

TEST(PowerOfDChoices, UsesWholeSetWhenSmall) {
  // |M_i| = 2 <= d = 2: behaves exactly like EFT on the set.
  std::vector<Task> tasks{
      {.release = 0, .proc = 3, .eligible = ProcSet({0, 1})},
      {.release = 0, .proc = 1, .eligible = ProcSet({0, 1})},
  };
  const Instance inst(3, std::move(tasks));
  PowerOfDChoicesDispatcher d2(2, 1);
  const auto sched = run_dispatcher(inst, d2);
  EXPECT_NE(sched.machine(0), sched.machine(1));  // spreads over both
  EXPECT_TRUE(sched.validate().ok());
}

TEST(PowerOfDChoices, ProbesAreWithinEligibleSet) {
  Rng rng(21);
  RandomInstanceOptions opts;
  opts.m = 8;
  opts.n = 300;
  opts.sets = RandomSets::kArbitrary;
  const auto inst = random_instance(opts, rng);
  PowerOfDChoicesDispatcher d2(2, 5);
  const auto sched = run_dispatcher(inst, d2);
  EXPECT_TRUE(sched.validate().ok()) << sched.validate().str();
}

TEST(PowerOfDChoices, MoreChoicesNeverHurtOnAverage) {
  // d = 2 should already be close to full EFT and far better than d = 1
  // (random) at high load — the power-of-two-choices effect.
  Rng rng(31);
  RandomInstanceOptions opts;
  opts.m = 10;
  opts.n = 3000;
  opts.unit_tasks = true;
  opts.max_release = 330.0;  // ~90% load
  const auto inst = random_instance(opts, rng);
  auto mean_flow_with = [&inst](int d) {
    PowerOfDChoicesDispatcher dispatcher(d, 7);
    return run_dispatcher(inst, dispatcher).mean_flow();
  };
  const double one = mean_flow_with(1);
  const double two = mean_flow_with(2);
  EXPECT_LT(two, one);
}

TEST(PowerOfDChoices, RejectsBadD) {
  EXPECT_THROW(PowerOfDChoicesDispatcher(0, 1), std::invalid_argument);
}

TEST(RoundRobinDispatcher, IndependentCursorsPerSet) {
  std::vector<Task> tasks{
      {.release = 0, .proc = 1, .eligible = ProcSet({0, 1})},
      {.release = 0, .proc = 1, .eligible = ProcSet({2, 3})},
      {.release = 0, .proc = 1, .eligible = ProcSet({0, 1})},
      {.release = 0, .proc = 1, .eligible = ProcSet({2, 3})},
  };
  const Instance inst(4, std::move(tasks));
  RoundRobinDispatcher d;
  const auto sched = run_dispatcher(inst, d);
  EXPECT_EQ(sched.machine(0), 0);
  EXPECT_EQ(sched.machine(1), 2);
  EXPECT_EQ(sched.machine(2), 1);
  EXPECT_EQ(sched.machine(3), 3);
}

}  // namespace
}  // namespace flowsched
