// ShardedEngine + BoundedStealDeque + CoreBudget (docs/sharding.md): the
// determinism contract (output invariant to the worker count), the
// bit-equivalence against the single-queue engines on shard-local
// workloads, the deterministic metrics merge, and the concurrent deque
// semantics (the TSAN target for the steal path).
#include "sched/sharded/sharded.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "check/audit.hpp"
#include "check/gen.hpp"
#include "kvstore/cluster_sim.hpp"
#include "model/schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/shard_merge.hpp"
#include "runner/thread_pool.hpp"
#include "sched/dispatchers.hpp"
#include "sched/engine.hpp"
#include "sched/sharded/steal_deque.hpp"
#include "sched/streaming.hpp"
#include "util/rng.hpp"

namespace flowsched {
namespace {

ShardedEngine::DispatcherFactory eft_factory() {
  return [](int) { return make_eft_min(); };
}

// --- BoundedStealDeque -----------------------------------------------------

TEST(StealDeque, LifoFifoSemantics) {
  BoundedStealDeque<int> dq(3);
  EXPECT_EQ(dq.capacity(), 4u);  // rounded up to a power of two
  EXPECT_TRUE(dq.push_bottom(1));
  EXPECT_TRUE(dq.push_bottom(2));
  EXPECT_TRUE(dq.push_bottom(3));
  EXPECT_TRUE(dq.push_bottom(4));
  EXPECT_FALSE(dq.push_bottom(5));  // full: bounded by design
  EXPECT_EQ(dq.size_estimate(), 4u);

  EXPECT_EQ(dq.steal_top().value(), 1);   // thief side is FIFO
  EXPECT_EQ(dq.pop_bottom().value(), 4);  // owner side is LIFO
  EXPECT_EQ(dq.steal_top().value(), 2);
  EXPECT_EQ(dq.pop_bottom().value(), 3);
  EXPECT_FALSE(dq.pop_bottom().has_value());
  EXPECT_FALSE(dq.steal_top().has_value());
  EXPECT_THROW(BoundedStealDeque<int>(0), std::invalid_argument);
}

// Owner pops while three thieves steal: every entry is taken exactly once
// (sum + count accounting). This is the test TSAN audits the Chase–Lev
// handshake through (tools/tsan_check.sh).
TEST(StealDeque, ConcurrentStealsDrainExactly) {
  constexpr int kEntries = 20000;
  constexpr int kThieves = 3;
  BoundedStealDeque<int> dq(kEntries);
  for (int i = 0; i < kEntries; ++i) ASSERT_TRUE(dq.push_bottom(i));

  std::atomic<long long> sum{0};
  std::atomic<int> count{0};
  std::atomic<bool> owner_done{false};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      for (;;) {
        if (auto v = dq.steal_top()) {
          sum.fetch_add(*v, std::memory_order_relaxed);
          count.fetch_add(1, std::memory_order_relaxed);
        } else if (owner_done.load(std::memory_order_acquire)) {
          return;
        }
      }
    });
  }
  for (;;) {
    if (auto v = dq.pop_bottom()) {
      sum.fetch_add(*v, std::memory_order_relaxed);
      count.fetch_add(1, std::memory_order_relaxed);
    } else if (dq.size_estimate() == 0) {
      break;
    }
  }
  owner_done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  EXPECT_EQ(count.load(), kEntries);
  EXPECT_EQ(sum.load(), static_cast<long long>(kEntries) * (kEntries - 1) / 2);
}

// --- CoreBudget ------------------------------------------------------------

TEST(CoreBudget, ReserveAndAcquire) {
  CoreBudget& budget = CoreBudget::instance();
  const int orig_total = budget.total();
  const int base = budget.claimed();

  budget.set_total(base + 8);
  budget.reserve(3);  // outer claim: never capped
  EXPECT_EQ(budget.claimed(), base + 3);
  EXPECT_EQ(budget.try_acquire(100), 5);  // inner claim: capped at remainder
  EXPECT_EQ(budget.claimed(), base + 8);
  EXPECT_EQ(budget.try_acquire(1), 0);  // nothing left
  budget.reserve(2);                    // outer claims still go through
  EXPECT_EQ(budget.claimed(), base + 10);
  budget.release(10);
  EXPECT_EQ(budget.claimed(), base);
  EXPECT_THROW(budget.reserve(-1), std::invalid_argument);

  budget.set_total(orig_total);
}

// --- ShardMap --------------------------------------------------------------

TEST(Sharded, ShardMapPartition) {
  for (int m : {1, 5, 16, 4096}) {
    for (int shards : {1, 2, 3, 7, 16}) {
      if (shards > m) continue;
      const ShardMap map = ShardMap::build(m, shards);
      ASSERT_EQ(map.lo.front(), 0);
      ASSERT_EQ(map.lo.back(), m);
      int min_width = m, max_width = 0;
      for (int s = 0; s < shards; ++s) {
        const int width = map.lo[s + 1] - map.lo[s];
        ASSERT_GE(width, 1);
        min_width = std::min(min_width, width);
        max_width = std::max(max_width, width);
        for (int j = map.lo[s]; j < map.lo[s + 1]; ++j) {
          ASSERT_EQ(map.shard_of(j), s);
        }
      }
      EXPECT_LE(max_width - min_width, 1);  // balanced partition
    }
  }
  EXPECT_THROW(ShardMap::build(4, 5), std::invalid_argument);
  EXPECT_THROW(ShardMap::build(4, 0), std::invalid_argument);
}

// --- ShardedEngine determinism / equivalence -------------------------------

std::vector<Assignment> run_streaming(const Instance& inst) {
  auto policy = make_eft_min();
  StreamingEngine engine(inst.m(), *policy);
  std::vector<Assignment> out;
  out.reserve(static_cast<std::size_t>(inst.n()));
  for (const Task& t : inst.tasks()) out.push_back(engine.release(t));
  engine.drain();
  return out;
}

// S=1 is the single-queue engine with epoch buffering in front: assignments
// must be bit-identical on arbitrary instances, across epoch boundaries.
TEST(Sharded, SingleShardMatchesStreaming) {
  StructuredInstanceOptions opts;
  opts.max_n = 80;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const FuzzStructure structure =
        kAllFuzzStructures[seed % std::size(kAllFuzzStructures)];
    const Instance inst = random_structured_instance(structure, opts, rng);

    ShardedEngine::Options sopts;
    sopts.shards = 1;
    sopts.epoch_tasks = 5;  // force several partial epochs
    const std::vector<Assignment> sharded =
        run_sharded(inst, eft_factory(), sopts);
    const std::vector<Assignment> reference = run_streaming(inst);
    ASSERT_EQ(sharded.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(sharded[i].machine, reference[i].machine) << "task " << i;
      ASSERT_EQ(sharded[i].start, reference[i].start) << "task " << i;
    }
  }
}

// Aligned disjoint blocks: every M_i is shard-local at S=4, so the sharded
// engine commits the bit-identical schedule as the single queue — the
// [shard-equiv] contract, here against OnlineEngine for variety.
TEST(Sharded, ShardLocalBitEqual) {
  const int m = 16;
  Rng rng(7);
  std::vector<Task> tasks;
  double time = 0;
  for (int i = 0; i < 400; ++i) {
    time += rng.exponential(1.0 / 10.0);
    const int block = rng.uniform_int(0, 3) * 4;
    tasks.push_back({.release = time,
                     .proc = rng.uniform(0.5, 1.5),
                     .eligible = ProcSet::interval(block, block + 3)});
  }
  const Instance inst(m, std::move(tasks));

  ShardedEngine::Options opts;
  opts.shards = 4;
  opts.epoch_tasks = 16;
  opts.steal_threshold = 1;  // cannot matter: no boundary tasks exist
  const std::vector<Assignment> sharded =
      run_sharded(inst, eft_factory(), opts);

  auto policy = make_eft_min();
  OnlineEngine batch(inst.m(), *policy);
  for (int i = 0; i < inst.n(); ++i) {
    const Assignment a = batch.release(inst.task(i));
    ASSERT_EQ(sharded[static_cast<std::size_t>(i)].machine, a.machine)
        << "task " << i;
    ASSERT_EQ(sharded[static_cast<std::size_t>(i)].start, a.start)
        << "task " << i;
  }
}

Instance overlapping_ring_instance(int m, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Task> tasks;
  double time = 0;
  for (int i = 0; i < n; ++i) {
    time += rng.exponential(1.0 / (0.7 * m));
    const int lo = rng.uniform_int(0, m - 1);
    std::vector<int> machines = {lo, (lo + 1) % m, (lo + 2) % m};
    std::sort(machines.begin(), machines.end());
    tasks.push_back({.release = time,
                     .proc = rng.uniform(0.5, 1.5),
                     .eligible = ProcSet(machines)});
  }
  return Instance(m, std::move(tasks));
}

// The headline contract: boundary routing and task-steals active, and the
// output — assignments AND statistics — byte-identical at every worker
// count.
TEST(Sharded, WorkerCountInvariance) {
  const Instance inst = overlapping_ring_instance(16, 600, 11);
  std::vector<std::vector<Assignment>> runs;
  std::vector<long long> stolen, boundary;
  std::vector<std::size_t> backlog;
  for (int workers : {1, 2, 4}) {
    ShardedEngine::Options opts;
    opts.shards = 4;
    opts.shard_workers = workers;
    opts.epoch_tasks = 32;
    opts.steal_threshold = 2;  // tiny: force the deterministic steal path
    ShardedEngine engine(inst.m(), eft_factory(), opts);
    std::vector<Assignment> got(static_cast<std::size_t>(inst.n()));
    engine.set_flow_sink([&](const ShardedEngine::FlowEvent& e) {
      got[static_cast<std::size_t>(e.task)] = {e.machine, e.start};
    });
    for (const Task& t : inst.tasks()) {
      engine.release(t.release, t.proc, t.eligible);
    }
    engine.drain();
    EXPECT_EQ(engine.workers(), workers);
    runs.push_back(std::move(got));
    stolen.push_back(engine.stolen_tasks());
    boundary.push_back(engine.boundary_tasks());
    backlog.push_back(engine.peak_backlog());
  }
  EXPECT_GT(boundary[0], 0);
  EXPECT_GT(stolen[0], 0);  // the steal path genuinely exercised
  for (std::size_t w = 1; w < runs.size(); ++w) {
    EXPECT_EQ(stolen[w], stolen[0]);
    EXPECT_EQ(boundary[w], boundary[0]);
    EXPECT_EQ(backlog[w], backlog[0]);
    ASSERT_EQ(runs[w].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      ASSERT_EQ(runs[w][i].machine, runs[0][i].machine)
          << "task " << i << " at workers=" << (w == 1 ? 2 : 4);
      ASSERT_EQ(runs[w][i].start, runs[0][i].start) << "task " << i;
    }
  }
}

// Boundary tasks dispatch inside their eligible set restricted to the
// executing shard; whole-range tasks (empty eligible) count as boundary and
// still land on a valid machine.
TEST(Sharded, BoundaryRouting) {
  const int m = 8;
  ShardedEngine::Options opts;
  opts.shards = 4;
  opts.epoch_tasks = 4;
  ShardedEngine engine(m, eft_factory(), opts);
  std::vector<ShardedEngine::FlowEvent> events;
  engine.set_flow_sink(
      [&](const ShardedEngine::FlowEvent& e) { events.push_back(e); });

  const ProcSet spanning({1, 2});  // crosses the shard 0 / shard 1 boundary
  const ProcSet whole;             // empty = all machines
  engine.release(0.0, 1.0, spanning);
  engine.release(0.5, 1.0, whole);
  engine.release(1.0, 1.0, ProcSet({6, 7}));  // shard-local
  engine.drain();

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(engine.boundary_tasks(), 2);
  EXPECT_TRUE(events[0].machine == 1 || events[0].machine == 2);
  EXPECT_GE(events[1].machine, 0);
  EXPECT_LT(events[1].machine, m);
  EXPECT_TRUE(events[2].machine == 6 || events[2].machine == 7);
  EXPECT_EQ(engine.released(), 3);
  EXPECT_EQ(engine.algo_name(), "EFT-Min");
}

// The merged schedule of a boundary-heavy run passes the structural audit
// (eligibility, overlap, accounting) under the "Sharded(...)" algo name.
TEST(Sharded, AuditedMergedSchedule) {
  const Instance inst = overlapping_ring_instance(12, 300, 23);
  ShardedEngine::Options opts;
  opts.shards = 3;
  opts.epoch_tasks = 16;
  opts.steal_threshold = 2;
  const std::vector<Assignment> got = run_sharded(inst, eft_factory(), opts);

  Schedule sched(inst);
  for (int i = 0; i < inst.n(); ++i) {
    sched.assign(i, got[static_cast<std::size_t>(i)].machine,
                 got[static_cast<std::size_t>(i)].start);
  }
  const std::vector<std::string> violations =
      audit_schedule(sched, "Sharded(EFT-Min)");
  EXPECT_TRUE(violations.empty()) << violations.front();
}

// Per-shard MetricsCollectors merged in shard order equal one collector on
// the single-queue engine, on a shard-local workload (obs/shard_merge.hpp).
TEST(Sharded, MergedMetricsMatchUnsharded) {
  const int m = 16;
  Rng rng(31);
  std::vector<Task> tasks;
  double time = 0;
  for (int i = 0; i < 500; ++i) {
    time += rng.exponential(1.0 / 8.0);
    const int block = rng.uniform_int(0, 3) * 4;
    tasks.push_back({.release = time,
                     .proc = rng.uniform(0.5, 1.5),
                     .eligible = ProcSet::interval(block, block + 3)});
  }
  const Instance inst(m, std::move(tasks));

  ShardedEngine::Options opts;
  opts.shards = 4;
  opts.epoch_tasks = 32;
  ShardedEngine engine(inst.m(), eft_factory(), opts);
  std::vector<std::unique_ptr<MetricsCollector>> collectors;
  for (int s = 0; s < opts.shards; ++s) {
    collectors.push_back(std::make_unique<MetricsCollector>());
    collectors.back()->on_run_begin(RunInfo{m, "EFT-Min", {}});
    engine.set_shard_observer(s, collectors.back().get());
  }
  for (const Task& t : inst.tasks()) {
    engine.release(t.release, t.proc, t.eligible);
  }
  engine.drain();
  for (auto& c : collectors) c->on_run_end(engine.makespan());

  auto policy = make_eft_min();
  StreamingEngine single(inst.m(), *policy);
  MetricsCollector reference;
  reference.on_run_begin(RunInfo{m, "EFT-Min", {}});
  single.set_observer(&reference);
  for (const Task& t : inst.tasks()) single.release(t);
  single.drain();
  reference.on_run_end(engine.makespan());

  std::vector<const MetricsCollector*> views;
  for (const auto& c : collectors) views.push_back(c.get());
  const ShardMetricsSummary merged = merge_shard_metrics(views);

  EXPECT_EQ(merged.shards, 4);
  EXPECT_EQ(merged.released, reference.released());
  EXPECT_EQ(merged.dispatched, reference.dispatched());
  EXPECT_EQ(merged.completed, reference.completed());
  EXPECT_EQ(merged.makespan, reference.makespan());
  EXPECT_EQ(merged.max_flow, reference.max_flow());
  EXPECT_NEAR(merged.mean_flow, reference.mean_flow(),
              1e-12 * (1.0 + reference.mean_flow()));
  double busy = 0;
  for (int j = 0; j < m; ++j) busy += reference.busy_time(j);
  EXPECT_EQ(merged.busy_total, busy);
  ASSERT_EQ(merged.flow_bins.size(), reference.flow_histogram().bins());
  for (std::size_t b = 0; b < merged.flow_bins.size(); ++b) {
    EXPECT_EQ(merged.flow_bins[b], reference.flow_histogram().bin_count(b));
  }
  EXPECT_THROW(merge_shard_metrics({}), std::invalid_argument);
}

// --- CoreBudget exhaustion / single-machine shards -------------------------

// With the process-wide budget fully committed, an auto-sized team
// (shard_workers = 0) degrades to the caller thread alone — and the output
// contract still holds: the starved single-worker run is byte-identical to
// a pinned multi-worker team on the same stream.
TEST(CoreBudget, ExhaustedBudgetFallsBackToCallerThread) {
  CoreBudget& budget = CoreBudget::instance();
  const int orig_total = budget.total();
  const int base = budget.claimed();
  // set_total(<= 0) restores the hardware default, so exhaust the ledger
  // via an outer reservation: total = base + 1, all of it claimed.
  budget.set_total(base + 1);
  budget.reserve(1);
  EXPECT_EQ(budget.try_acquire(4), 0);

  const Instance inst = overlapping_ring_instance(8, 200, 43);
  ShardedEngine::Options opts;
  opts.shards = 4;
  opts.shard_workers = 0;  // auto: must resolve to 1 under exhaustion
  opts.epoch_tasks = 16;
  opts.steal_threshold = 2;
  std::vector<Assignment> starved(static_cast<std::size_t>(inst.n()));
  {
    ShardedEngine engine(inst.m(), eft_factory(), opts);
    EXPECT_EQ(engine.workers(), 1);
    engine.set_flow_sink([&](const ShardedEngine::FlowEvent& e) {
      starved[static_cast<std::size_t>(e.task)] = {e.machine, e.start};
    });
    for (const Task& t : inst.tasks()) {
      engine.release(t.release, t.proc, t.eligible);
    }
    engine.drain();
  }
  EXPECT_EQ(budget.claimed(), base + 1);  // the zero grant released cleanly

  // Free the reserved core: the auto team takes exactly it (caller + 1).
  budget.release(1);
  {
    ShardedEngine engine(inst.m(), eft_factory(), opts);
    EXPECT_EQ(engine.workers(), 2);
  }
  EXPECT_EQ(budget.claimed(), base);
  budget.set_total(orig_total);

  opts.shard_workers = 4;  // pinned teams bypass the budget cap entirely
  const std::vector<Assignment> pinned = run_sharded(inst, eft_factory(), opts);
  ASSERT_EQ(starved.size(), pinned.size());
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    ASSERT_EQ(starved[i].machine, pinned[i].machine) << "task " << i;
    ASSERT_EQ(starved[i].start, pinned[i].start) << "task " << i;
  }
}

// shards == m: every shard owns exactly one machine. Dispatch inside a
// shard is then forced, any multi-machine set is a boundary task, and
// singleton-set workloads still bit-match the single queue.
TEST(Sharded, SingleMachineShards) {
  const int m = 6;
  const ShardMap map = ShardMap::build(m, m);
  for (int j = 0; j < m; ++j) {
    EXPECT_EQ(map.shard_of(j), j);
    EXPECT_EQ(map.lo[static_cast<std::size_t>(j) + 1] -
                  map.lo[static_cast<std::size_t>(j)],
              1);
  }

  Rng rng(51);
  std::vector<Task> tasks;
  double time = 0;
  for (int i = 0; i < 150; ++i) {
    time += rng.exponential(1.0 / 4.0);
    const int j = rng.uniform_int(0, m - 1);
    tasks.push_back({.release = time,
                     .proc = rng.uniform(0.5, 1.5),
                     .eligible = ProcSet({j})});
  }
  const Instance inst(m, std::move(tasks));

  ShardedEngine::Options opts;
  opts.shards = m;
  opts.shard_workers = 3;
  opts.epoch_tasks = 8;
  const std::vector<Assignment> sharded =
      run_sharded(inst, eft_factory(), opts);
  const std::vector<Assignment> reference = run_streaming(inst);
  ASSERT_EQ(sharded.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(sharded[i].machine, reference[i].machine) << "task " << i;
    ASSERT_EQ(sharded[i].start, reference[i].start) << "task " << i;
  }

  // A spanning set exercises the boundary path at shard width 1 and still
  // lands inside its eligible set.
  ShardedEngine engine(m, eft_factory(), opts);
  std::vector<ShardedEngine::FlowEvent> events;
  engine.set_flow_sink(
      [&](const ShardedEngine::FlowEvent& e) { events.push_back(e); });
  engine.release(0.0, 1.0, ProcSet({2, 3}));
  engine.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(engine.boundary_tasks(), 1);
  EXPECT_TRUE(events[0].machine == 2 || events[0].machine == 3);
}

// --- [shard-equiv] for randomized dispatchers ------------------------------

// Counter-based per-task draws (sched/tiebreak.hpp per_task_seed) make
// independently constructed dispatcher replicas agree: each lane keys its
// draw on the global task id the router hands it, so the sharded schedule
// is bit-identical to the single queue even for randomized policies — the
// [shard-equiv] contract the fuzzer asserts through shard_equiv_policies().
TEST(Sharded, CounterRngRandomizedPoliciesBitEqual) {
  const int m = 16;
  Rng rng(61);
  std::vector<Task> tasks;
  double time = 0;
  for (int i = 0; i < 400; ++i) {
    time += rng.exponential(1.0 / 10.0);
    const int block = rng.uniform_int(0, 3) * 4;  // shard-local at S=4
    tasks.push_back({.release = time,
                     .proc = rng.uniform(0.5, 1.5),
                     .eligible = ProcSet::interval(block, block + 3)});
  }
  const Instance inst(m, std::move(tasks));

  static constexpr std::uint64_t kSeed = 0x5eedULL;
  struct Case {
    const char* name;
    std::function<std::unique_ptr<Dispatcher>()> make;
  };
  const std::vector<Case> cases = {
      {"EFT-Rand",
       [] {
         return std::make_unique<EftDispatcher>(TieBreakKind::kRand, kSeed,
                                                /*counter_rng=*/true);
       }},
      {"RandomEligible",
       [] {
         return std::make_unique<RandomEligibleDispatcher>(
             kSeed, /*counter_rng=*/true);
       }},
      {"Pow2",
       [] {
         return std::make_unique<PowerOfDChoicesDispatcher>(
             2, kSeed, /*counter_rng=*/true);
       }},
  };
  for (const Case& c : cases) {
    auto ref_dispatcher = c.make();
    StreamingEngine single(inst.m(), *ref_dispatcher);
    std::vector<Assignment> reference;
    reference.reserve(static_cast<std::size_t>(inst.n()));
    for (const Task& t : inst.tasks()) reference.push_back(single.release(t));
    single.drain();

    ShardedEngine::Options opts;
    opts.shards = 4;
    opts.shard_workers = 2;
    opts.epoch_tasks = 16;
    const std::vector<Assignment> sharded =
        run_sharded(inst, [&](int) { return c.make(); }, opts);
    ASSERT_EQ(sharded.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(sharded[i].machine, reference[i].machine)
          << c.name << " task " << i;
      ASSERT_EQ(sharded[i].start, reference[i].start)
          << c.name << " task " << i;
    }
  }
}

// --- simulate_cluster_streaming_sharded ------------------------------------

StreamReport run_cluster(int shards, int workers, std::uint64_t seed) {
  StoreConfig store_config;
  store_config.m = 16;
  store_config.keys = 400;
  store_config.zipf_s = 0.9;
  store_config.k = 4;
  store_config.strategy = ReplicationStrategy::kDisjoint;  // aligned blocks
  StreamConfig config;
  config.lambda = 10.0;
  config.requests = 4000;
  config.dist = ServiceDist::kExponential;
  Rng rng(seed);
  KeyValueStore store(store_config, rng);
  if (shards == 0) {
    auto policy = make_eft_min();
    return simulate_cluster_streaming(store, config, *policy, rng);
  }
  ShardedEngine::Options opts;
  opts.shards = shards;
  opts.shard_workers = workers;
  return simulate_cluster_streaming_sharded(store, config, eft_factory(),
                                            opts, rng);
}

// The full report pipeline: sharded at S=1 reproduces the legacy streaming
// report byte-for-byte, and on the aligned-disjoint store so does S=4 — at
// any worker count (the property cli_stream_smoke byte-compares end-to-end).
TEST(Sharded, StreamingShardedReportMatchesLegacy) {
  const std::string legacy = run_cluster(0, 0, 77).str();
  EXPECT_EQ(run_cluster(1, 1, 77).str(), legacy);
  EXPECT_EQ(run_cluster(4, 1, 77).str(), legacy);
  EXPECT_EQ(run_cluster(4, 4, 77).str(), legacy);
}

}  // namespace
}  // namespace flowsched
