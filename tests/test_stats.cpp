#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace flowsched {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
}

TEST(Stats, MedianThrowsOnEmpty) {
  EXPECT_THROW(median(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Stats, QuantileRejectsOutOfRange) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
}

TEST(Stats, StddevMatchesOnline) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  OnlineStats s;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(stddev(xs), s.stddev(), 1e-12);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bin 0
  h.add(0.5);    // bin 0
  h.add(5.0);    // bin 2
  h.add(100.0);  // clamps into bin 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string r = h.render(10);
  EXPECT_NE(r.find('#'), std::string::npos);
  EXPECT_NE(r.find('2'), std::string::npos);
}

}  // namespace
}  // namespace flowsched
