// The sparse revised simplex (lp/revised.hpp) against the dense tableau
// oracle: degenerate/cycling programs, infeasible/unbounded detection
// through the revised path, the warm-start contract, and a randomized
// cross-check of revised-double, tableau-double, revised-Rational and
// tableau-Rational on ~200 seeded small programs.
#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace flowsched {
namespace {

TEST(SimplexRevised, AgreesWithTableauOnBasics) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> obj 12.
  LpProblemD lp;
  const int x = lp.add_var(3.0);
  const int y = lp.add_var(2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{x, 1.0}, {y, 3.0}}, Relation::kLe, 6.0);
  const auto revised = lp.solve();
  const auto tableau = lp.solve_tableau();
  ASSERT_EQ(revised.status, LpStatus::kOptimal);
  ASSERT_EQ(tableau.status, LpStatus::kOptimal);
  EXPECT_NEAR(revised.objective, tableau.objective, 1e-9);
  EXPECT_NEAR(revised.x[0], 4.0, 1e-9);
  EXPECT_FALSE(revised.basis.empty());
  EXPECT_TRUE(tableau.basis.empty());  // the oracle has no warm handle
}

TEST(SimplexRevised, BealeCyclingProgramTerminates) {
  // Beale (1955): the classic program on which Dantzig pricing with naive
  // tie-breaking cycles forever. The degeneracy-streak Bland fallback must
  // terminate it at the optimum (x3 = 1, objective 1/20).
  LpProblemD lp;
  const int x1 = lp.add_var(0.75);
  const int x2 = lp.add_var(-150.0);
  const int x3 = lp.add_var(0.02);
  const int x4 = lp.add_var(-6.0);
  lp.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -1.0 / 25.0}, {x4, 9.0}},
                    Relation::kLe, 0.0);
  lp.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -1.0 / 50.0}, {x4, 3.0}},
                    Relation::kLe, 0.0);
  lp.add_constraint({{x3, 1.0}}, Relation::kLe, 1.0);
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.05, 1e-9);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x3)], 1.0, 1e-9);
}

TEST(SimplexRevisedExact, BealeCyclingProgramTerminatesExactly) {
  LpProblemQ lp;
  const int x1 = lp.add_var(Rational(3, 4));
  const int x2 = lp.add_var(Rational(-150));
  const int x3 = lp.add_var(Rational(1, 50));
  const int x4 = lp.add_var(Rational(-6));
  lp.add_constraint({{x1, Rational(1, 4)},
                     {x2, Rational(-60)},
                     {x3, Rational(-1, 25)},
                     {x4, Rational(9)}},
                    Relation::kLe, Rational(0));
  lp.add_constraint({{x1, Rational(1, 2)},
                     {x2, Rational(-90)},
                     {x3, Rational(-1, 50)},
                     {x4, Rational(3)}},
                    Relation::kLe, Rational(0));
  lp.add_constraint({{x3, Rational(1)}}, Relation::kLe, Rational(1));
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.objective, Rational(1, 20));
}

TEST(SimplexRevised, MassivelyDegenerateProgramTerminates) {
  // 24 copies of the same constraint make nearly every pivot degenerate;
  // the solver must ride the Bland fallback to the optimum.
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  const int y = lp.add_var(1.0);
  const int z = lp.add_var(1.0);
  for (int i = 0; i < 24; ++i) {
    lp.add_constraint({{x, 1.0}, {y, 1.0}, {z, 1.0}}, Relation::kLe, 1.0);
  }
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  const auto sol = lp.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
}

TEST(SimplexRevised, DetectsInfeasibility) {
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kLe, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::kGe, 2.0);
  EXPECT_EQ(lp.solve().status, LpStatus::kInfeasible);
}

TEST(SimplexRevised, DetectsUnboundedness) {
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  const int y = lp.add_var(0.0);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kLe, 1.0);
  EXPECT_EQ(lp.solve().status, LpStatus::kUnbounded);
}

TEST(SimplexRevisedExact, InfeasibleAndEqualityPrograms) {
  LpProblemQ lp;
  const int x = lp.add_var(Rational(1));
  lp.add_constraint({{x, Rational(1)}}, Relation::kEq, Rational(1));
  lp.add_constraint({{x, Rational(1)}}, Relation::kEq, Rational(2));
  EXPECT_EQ(lp.solve().status, LpStatus::kInfeasible);

  LpProblemQ ok;
  const int a = ok.add_var(Rational(1));
  const int b = ok.add_var(Rational(0));
  ok.add_constraint({{a, Rational(1)}, {b, Rational(1)}}, Relation::kEq,
                    Rational(3));
  ok.add_constraint({{a, Rational(1)}}, Relation::kLe, Rational(2));
  const auto sol = ok.solve();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.x[0], Rational(2));
  EXPECT_EQ(sol.x[1], Rational(1));
}

TEST(SimplexRevised, WarmStartReachesSameOptimumAfterRetargeting) {
  // Solve, retune one coefficient via set_term, re-solve warm: the result
  // must match a cold solve and the tableau oracle on the new program.
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  const int y = lp.add_var(1.0);
  const int row = lp.add_constraint({{x, 2.0}, {y, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kLe, 4.0);
  const auto first = lp.solve();
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  EXPECT_NEAR(first.objective, 8.0 / 3.0, 1e-9);

  lp.set_term(row, x, 1.0);  // now x + y <= 4 binds differently
  const auto warm = lp.solve_warm(first.basis);
  const auto cold = lp.solve();
  const auto oracle = lp.solve_tableau();
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  EXPECT_NEAR(warm.objective, oracle.objective, 1e-9);
}

TEST(SimplexRevised, BogusWarmBasisFallsBackToColdStart) {
  LpProblemD lp;
  const int x = lp.add_var(3.0);
  const int y = lp.add_var(2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{x, 1.0}, {y, 3.0}}, Relation::kLe, 6.0);
  // Wrong size, out-of-range, and duplicate bases must all be rejected
  // silently and still produce the optimum.
  for (const std::vector<int>& bogus :
       {std::vector<int>{}, std::vector<int>{0, 99}, std::vector<int>{1, 1}}) {
    const auto sol = lp.solve_warm(bogus);
    ASSERT_EQ(sol.status, LpStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 12.0, 1e-9);
  }
}

TEST(SimplexRevised, PartialCrashBasisAndFallbackChain) {
  // -1 entries in a warm basis stand for "this row's slack/artificial", so
  // a partial (crash) basis is legal; and the two-basis overload must land
  // on the crash basis when the primary is rejected.
  LpProblemD lp;
  const int x = lp.add_var(3.0);
  const int y = lp.add_var(2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLe, 4.0);
  lp.add_constraint({{x, 1.0}, {y, 3.0}}, Relation::kLe, 6.0);
  // Crash basis: x basic in row 0, row 1 keeps its slack.
  const std::vector<int> crash{x, -1};
  const auto crashed = lp.solve_warm(crash);
  ASSERT_EQ(crashed.status, LpStatus::kOptimal);
  EXPECT_NEAR(crashed.objective, 12.0, 1e-9);
  // Primary basis is bogus (duplicate) — the chain must fall through to the
  // crash basis, then still reach the optimum.
  const auto chained = lp.solve_warm(std::vector<int>{1, 1}, crash);
  ASSERT_EQ(chained.status, LpStatus::kOptimal);
  EXPECT_NEAR(chained.objective, 12.0, 1e-9);
  // A valid primary is preferred: resuming from the optimum costs no pivots.
  const auto resumed = lp.solve_warm(crashed.basis, crash);
  ASSERT_EQ(resumed.status, LpStatus::kOptimal);
  EXPECT_NEAR(resumed.objective, 12.0, 1e-9);
  EXPECT_EQ(resumed.iterations, 0u);
}

TEST(SimplexRevised, WarmStartAcrossRhsChange) {
  // Tightening the rhs keeps the shape (signs unchanged), so the previous
  // basis is a legal warm start even when it lands primal infeasible (the
  // solver then falls back internally).
  LpProblemD lp;
  const int x = lp.add_var(1.0);
  const int row = lp.add_constraint({{x, 1.0}}, Relation::kLe, 10.0);
  const auto first = lp.solve();
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  lp.set_rhs(row, 3.0);
  const auto warm = lp.solve_warm(first.basis);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, 3.0, 1e-9);
}

// ---- Randomized cross-check ------------------------------------------------

struct RandomLp {
  LpProblemD as_double;
  LpProblemQ as_exact;
};

/// A small random program with integer data, built identically in double
/// and Rational arithmetic. Sparse on purpose: ~40% of coefficients are 0.
RandomLp random_lp(Rng& rng) {
  RandomLp lp;
  const int n = 1 + static_cast<int>(rng.uniform_int(0, 4));
  const int rows = 1 + static_cast<int>(rng.uniform_int(0, 4));
  for (int v = 0; v < n; ++v) {
    const int c = static_cast<int>(rng.uniform_int(0, 6)) - 3;
    lp.as_double.add_var(static_cast<double>(c));
    lp.as_exact.add_var(Rational(c));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> dterms;
    std::vector<std::pair<int, Rational>> qterms;
    for (int v = 0; v < n; ++v) {
      if (rng.uniform_int(0, 9) < 4) continue;
      const int c = static_cast<int>(rng.uniform_int(0, 6)) - 3;
      if (c == 0) continue;
      dterms.emplace_back(v, static_cast<double>(c));
      qterms.emplace_back(v, Rational(c));
    }
    if (dterms.empty()) {
      dterms.emplace_back(0, 1.0);
      qterms.emplace_back(0, Rational(1));
    }
    const int rel_pick = static_cast<int>(rng.uniform_int(0, 5));
    const Relation rel = rel_pick < 3   ? Relation::kLe
                         : rel_pick < 5 ? Relation::kGe
                                        : Relation::kEq;
    const int rhs = static_cast<int>(rng.uniform_int(0, 8)) - 4;
    lp.as_double.add_constraint(dterms, rel, static_cast<double>(rhs));
    lp.as_exact.add_constraint(qterms, rel, Rational(rhs));
  }
  return lp;
}

TEST(SimplexRevised, RandomProgramsAgreeAcrossSolversAndScalars) {
  int optimal = 0;
  int infeasible = 0;
  int unbounded = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(9000 + seed);
    RandomLp lp = random_lp(rng);
    const auto revised_d = lp.as_double.solve();
    const auto tableau_d = lp.as_double.solve_tableau();
    const auto revised_q = lp.as_exact.solve();
    const auto tableau_q = lp.as_exact.solve_tableau();

    ASSERT_EQ(revised_q.status, tableau_q.status) << "seed " << seed;
    ASSERT_EQ(revised_d.status, tableau_q.status) << "seed " << seed;
    ASSERT_EQ(tableau_d.status, tableau_q.status) << "seed " << seed;
    switch (tableau_q.status) {
      case LpStatus::kOptimal: {
        ++optimal;
        // Exact arithmetic must agree exactly; doubles to 1e-7 relative.
        EXPECT_EQ(revised_q.objective, tableau_q.objective) << "seed " << seed;
        const double exact = tableau_q.objective.to_double();
        const double scale = 1.0 + std::abs(exact);
        EXPECT_NEAR(revised_d.objective, exact, 1e-7 * scale)
            << "seed " << seed;
        EXPECT_NEAR(tableau_d.objective, exact, 1e-7 * scale)
            << "seed " << seed;
        break;
      }
      case LpStatus::kInfeasible:
        ++infeasible;
        break;
      case LpStatus::kUnbounded:
        ++unbounded;
        break;
      case LpStatus::kIterLimit:
        FAIL() << "iteration limit on seed " << seed;
    }
  }
  // The generator must actually exercise all three outcomes.
  EXPECT_GE(optimal, 40);
  EXPECT_GT(infeasible, 10);
  EXPECT_GT(unbounded, 10);
}

TEST(SimplexRevised, RandomWarmStartsMatchColdSolves) {
  // Chains of objective retunings: warm-started re-solves must match cold
  // solves on every step (the Fig. 10 sweep contract in miniature).
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(31000 + seed);
    RandomLp lp = random_lp(rng);
    auto prev = lp.as_double.solve();
    for (int step = 0; step < 4; ++step) {
      const int var =
          static_cast<int>(rng.uniform_int(0, lp.as_double.num_vars() - 1));
      const int c = static_cast<int>(rng.uniform_int(0, 6)) - 3;
      lp.as_double.set_objective(var, static_cast<double>(c));
      const auto warm = prev.status == LpStatus::kOptimal
                            ? lp.as_double.solve_warm(prev.basis)
                            : lp.as_double.solve();
      const auto cold = lp.as_double.solve();
      ASSERT_EQ(warm.status, cold.status) << "seed " << seed;
      if (cold.status == LpStatus::kOptimal) {
        EXPECT_NEAR(warm.objective, cold.objective,
                    1e-7 * (1.0 + std::abs(cold.objective)))
            << "seed " << seed;
      }
      prev = warm;
    }
  }
}

}  // namespace
}  // namespace flowsched
